#include "alog/program.h"

#include <set>
#include <unordered_map>
#include <unordered_set>

#include "alog/lexer.h"
#include "common/strutil.h"

namespace iflex {

const std::string& Program::query() const {
  static const std::string kEmpty;
  if (!query_.empty()) return query_;
  if (!rules_.empty()) return rules_.front().head.predicate;
  return kEmpty;
}

// ---------------------------------------------------------------- Validate

namespace {

// Predicates defined by rule heads in this program but absent from the
// catalog are intensional.
std::unordered_set<std::string> IntensionalHeads(const Catalog& catalog,
                                                 const std::vector<Rule>& rules) {
  std::unordered_set<std::string> out;
  for (const auto& r : rules) {
    if (!catalog.Has(r.head.predicate)) out.insert(r.head.predicate);
  }
  return out;
}

}  // namespace

Status Program::Validate(const Catalog& catalog) {
  std::unordered_set<std::string> intensional =
      IntensionalHeads(catalog, rules_);

  // Arity consistency for intensional predicates.
  std::unordered_map<std::string, size_t> intensional_arity;
  for (const auto& r : rules_) {
    if (intensional.count(r.head.predicate)) {
      auto [it, inserted] =
          intensional_arity.emplace(r.head.predicate, r.head.args.size());
      if (!inserted && it->second != r.head.args.size()) {
        return Status::InvalidArgument(
            "inconsistent arity for predicate " + r.head.predicate);
      }
    }
  }

  for (Rule& rule : rules_) {
    const std::string& hp = rule.head.predicate;
    size_t head_inputs = 0;
    if (catalog.Has(hp)) {
      IFLEX_ASSIGN_OR_RETURN(PredicateKind kind, catalog.KindOf(hp));
      if (kind != PredicateKind::kIEPredicate) {
        return Status::InvalidArgument(
            "rule head " + hp +
            " must be intensional or a declared IE predicate");
      }
      rule.is_description = true;
      IFLEX_ASSIGN_OR_RETURN(size_t arity, catalog.ArityOf(hp));
      if (rule.head.args.size() != arity) {
        return Status::InvalidArgument(StringPrintf(
            "description rule head %s has %zu args, declared arity is %zu",
            hp.c_str(), rule.head.args.size(), arity));
      }
      IFLEX_ASSIGN_OR_RETURN(head_inputs, catalog.InputArityOf(hp));
      if (rule.has_annotations()) {
        return Status::InvalidArgument(
            "annotations are not supported on description rules (" + hp + ")");
      }
    } else {
      rule.is_description = false;
    }

    // Collect variables bound by the body. For description rules the head
    // input variables are bound by the caller.
    std::unordered_set<std::string> bound;
    for (size_t i = 0; i < head_inputs; ++i) bound.insert(rule.head.args[i]);

    for (const Literal& lit : rule.body) {
      if (lit.kind != Literal::Kind::kAtom) continue;
      const Atom& atom = lit.atom;
      const std::string& p = atom.predicate;
      size_t arity;
      size_t n_inputs = 0;
      PredicateKind kind;
      if (intensional.count(p)) {
        kind = PredicateKind::kIntensional;
        arity = intensional_arity[p];
      } else if (catalog.Has(p)) {
        IFLEX_ASSIGN_OR_RETURN(kind, catalog.KindOf(p));
        IFLEX_ASSIGN_OR_RETURN(arity, catalog.ArityOf(p));
        IFLEX_ASSIGN_OR_RETURN(n_inputs, catalog.InputArityOf(p));
      } else {
        return Status::NotFound("unknown predicate " + p + " in rule " +
                                rule.ToString());
      }
      if (atom.args.size() != arity) {
        return Status::InvalidArgument(StringPrintf(
            "%s used with %zu args, arity is %zu", p.c_str(),
            atom.args.size(), arity));
      }
      // Output positions bind variables; p-function args never bind.
      if (kind != PredicateKind::kPFunction) {
        size_t first_out =
            (kind == PredicateKind::kExtensional ||
             kind == PredicateKind::kIntensional)
                ? 0
                : n_inputs;
        for (size_t i = first_out; i < atom.args.size(); ++i) {
          if (atom.args[i].is_var()) bound.insert(atom.args[i].var);
        }
      }
    }

    // Safety: head variables (minus description-rule inputs) and all
    // variables used in constraints/comparisons/p-function args and
    // p-predicate inputs must be bound.
    auto require_bound = [&](const std::string& var,
                             const char* where) -> Status {
      if (!bound.count(var)) {
        return Status::UnsafeRule(StringPrintf(
            "variable %s in %s is not bound in rule: %s", var.c_str(), where,
            rule.ToString().c_str()));
      }
      return Status::OK();
    };

    for (size_t i = head_inputs; i < rule.head.args.size(); ++i) {
      IFLEX_RETURN_NOT_OK(require_bound(rule.head.args[i], "head"));
    }
    for (const Literal& lit : rule.body) {
      switch (lit.kind) {
        case Literal::Kind::kConstraint: {
          IFLEX_RETURN_NOT_OK(require_bound(lit.constraint.var, "constraint"));
          IFLEX_ASSIGN_OR_RETURN(const Feature* f,
                                 catalog.features().Get(lit.constraint.feature));
          switch (f->param_kind()) {
            case ParamKind::kNone:
              if (lit.constraint.param.has_value()) {
                return Status::InvalidArgument(
                    "feature " + f->name() + " takes no parameter");
              }
              break;
            case ParamKind::kString:
              if (!lit.constraint.param.str.has_value()) {
                return Status::InvalidArgument(
                    "feature " + f->name() + " needs a string parameter");
              }
              break;
            case ParamKind::kNumber:
              if (!lit.constraint.param.num.has_value()) {
                return Status::InvalidArgument(
                    "feature " + f->name() + " needs a numeric parameter");
              }
              break;
          }
          break;
        }
        case Literal::Kind::kComparison: {
          if (lit.cmp.lhs.is_var()) {
            IFLEX_RETURN_NOT_OK(require_bound(lit.cmp.lhs.var, "comparison"));
          }
          if (lit.cmp.rhs.is_var()) {
            IFLEX_RETURN_NOT_OK(require_bound(lit.cmp.rhs.var, "comparison"));
          }
          break;
        }
        case Literal::Kind::kAtom: {
          const Atom& atom = lit.atom;
          if (intensional.count(atom.predicate)) break;
          IFLEX_ASSIGN_OR_RETURN(PredicateKind kind,
                                 catalog.KindOf(atom.predicate));
          size_t check_upto = 0;
          if (kind == PredicateKind::kPFunction) {
            check_upto = atom.args.size();
          } else if (kind == PredicateKind::kPPredicate ||
                     kind == PredicateKind::kIEPredicate ||
                     kind == PredicateKind::kBuiltinFrom) {
            IFLEX_ASSIGN_OR_RETURN(check_upto,
                                   catalog.InputArityOf(atom.predicate));
          }
          for (size_t i = 0; i < check_upto; ++i) {
            if (atom.args[i].is_var()) {
              IFLEX_RETURN_NOT_OK(
                  require_bound(atom.args[i].var, atom.predicate.c_str()));
            }
          }
          break;
        }
      }
    }
  }
  return Status::OK();
}

// ------------------------------------------------------------------ Unfold

namespace {

Term Substitute(const Term& t,
                const std::unordered_map<std::string, Term>& mapping,
                const std::string& fresh_prefix) {
  if (!t.is_var()) return t;
  auto it = mapping.find(t.var);
  if (it != mapping.end()) return it->second;
  return Term::Var(fresh_prefix + t.var);
}

Literal SubstituteLiteral(const Literal& lit,
                          const std::unordered_map<std::string, Term>& mapping,
                          const std::string& fresh_prefix, Status* status) {
  Literal out = lit;
  switch (lit.kind) {
    case Literal::Kind::kAtom:
      for (Term& t : out.atom.args) {
        t = Substitute(t, mapping, fresh_prefix);
      }
      break;
    case Literal::Kind::kComparison:
      out.cmp.lhs = Substitute(lit.cmp.lhs, mapping, fresh_prefix);
      out.cmp.rhs = Substitute(lit.cmp.rhs, mapping, fresh_prefix);
      break;
    case Literal::Kind::kConstraint: {
      Term t = Substitute(Term::Var(lit.constraint.var), mapping, fresh_prefix);
      if (!t.is_var()) {
        *status = Status::InvalidArgument(
            "cannot bind constraint variable to a constant while unfolding " +
            lit.constraint.ToString());
        return out;
      }
      out.constraint.var = t.var;
      break;
    }
  }
  return out;
}

}  // namespace

Result<Program> Program::Unfold(const Catalog& catalog) const {
  Program out;
  out.set_query(query());
  int fresh_counter = 0;

  for (const Rule& rule : rules_) {
    if (rule.is_description) continue;  // consumed by unfolding

    // Worklist of partially unfolded variants of this rule.
    std::vector<Rule> work{rule};
    int guard = 0;
    std::vector<Rule> done;
    while (!work.empty()) {
      if (++guard > 10000) {
        return Status::ExecutionError("unfolding did not terminate (cyclic description rules?)");
      }
      Rule r = std::move(work.back());
      work.pop_back();

      // Find the first IE-predicate atom.
      size_t ie_idx = SIZE_MAX;
      for (size_t i = 0; i < r.body.size(); ++i) {
        if (r.body[i].kind != Literal::Kind::kAtom) continue;
        auto kind = catalog.KindOf(r.body[i].atom.predicate);
        if (kind.ok() && *kind == PredicateKind::kIEPredicate) {
          ie_idx = i;
          break;
        }
      }
      if (ie_idx == SIZE_MAX) {
        done.push_back(std::move(r));
        continue;
      }

      const Atom ie_atom = r.body[ie_idx].atom;
      std::vector<size_t> desc = DescriptionRulesFor(ie_atom.predicate);
      if (desc.empty()) {
        return Status::InvalidArgument(
            "IE predicate " + ie_atom.predicate +
            " has no description rule; cannot unfold");
      }
      for (size_t di : desc) {
        const Rule& drule = rules_[di];
        std::string prefix = StringPrintf("_u%d_", fresh_counter++);
        std::unordered_map<std::string, Term> mapping;
        for (size_t i = 0; i < drule.head.args.size(); ++i) {
          mapping[drule.head.args[i]] = ie_atom.args[i];
        }
        Rule variant = r;
        variant.body.erase(variant.body.begin() +
                           static_cast<ptrdiff_t>(ie_idx));
        Status st = Status::OK();
        std::vector<Literal> inlined;
        for (const Literal& lit : drule.body) {
          inlined.push_back(SubstituteLiteral(lit, mapping, prefix, &st));
          IFLEX_RETURN_NOT_OK(st);
        }
        variant.body.insert(variant.body.begin() +
                                static_cast<ptrdiff_t>(ie_idx),
                            inlined.begin(), inlined.end());
        work.push_back(std::move(variant));
      }
    }
    for (Rule& r : done) out.AddRule(std::move(r));
  }
  IFLEX_RETURN_NOT_OK(out.Validate(catalog));
  return out;
}

std::vector<size_t> Program::DescriptionRulesFor(
    const std::string& ie_predicate) const {
  std::vector<size_t> out;
  for (size_t i = 0; i < rules_.size(); ++i) {
    if (rules_[i].is_description && rules_[i].head.predicate == ie_predicate) {
      out.push_back(i);
    }
  }
  return out;
}

Status Program::AddConstraint(const Catalog& catalog,
                              const std::string& ie_predicate,
                              size_t output_idx, const std::string& feature,
                              FeatureParam param, FeatureValue value) {
  IFLEX_ASSIGN_OR_RETURN(size_t n_inputs, catalog.InputArityOf(ie_predicate));
  IFLEX_ASSIGN_OR_RETURN(size_t arity, catalog.ArityOf(ie_predicate));
  if (n_inputs + output_idx >= arity) {
    return Status::InvalidArgument(StringPrintf(
        "output index %zu out of range for %s", output_idx,
        ie_predicate.c_str()));
  }
  std::vector<size_t> desc = DescriptionRulesFor(ie_predicate);
  if (desc.empty()) {
    return Status::NotFound("no description rule for " + ie_predicate);
  }
  for (size_t di : desc) {
    Rule& rule = rules_[di];
    ConstraintLit lit;
    lit.feature = feature;
    lit.var = rule.head.args[n_inputs + output_idx];
    lit.param = param;
    lit.value = value;
    bool present = false;
    for (const Literal& l : rule.body) {
      if (l.kind == Literal::Kind::kConstraint && l.constraint == lit) {
        present = true;
        break;
      }
    }
    if (!present) rule.body.push_back(Literal::OfConstraint(std::move(lit)));
  }
  return Status::OK();
}

std::string Program::ToString() const {
  std::string out;
  for (const auto& r : rules_) {
    out += r.ToString();
    out += "\n";
  }
  return out;
}

uint64_t Program::Fingerprint() const {
  return Fingerprint64(ToString() + "|query=" + query());
}

// ------------------------------------------------------------------ Parser

namespace {

class Parser {
 public:
  Parser(const std::vector<Tok>& toks, const Catalog& catalog)
      : toks_(toks), catalog_(catalog) {}

  Result<Program> ParseAll() {
    Program prog;
    while (cur().kind != TokKind::kEnd) {
      IFLEX_ASSIGN_OR_RETURN(Rule rule, ParseRule());
      prog.AddRule(std::move(rule));
    }
    if (prog.rules().empty()) {
      return Status::ParseError("empty program");
    }
    return prog;
  }

 private:
  const Tok& cur() const { return toks_[pos_]; }
  const Tok& peek(size_t n = 1) const {
    size_t i = pos_ + n;
    return toks_[i < toks_.size() ? i : toks_.size() - 1];
  }
  void Advance() {
    if (cur().kind != TokKind::kEnd) ++pos_;
  }
  bool Accept(TokKind k) {
    if (cur().kind == k) {
      Advance();
      return true;
    }
    return false;
  }
  Status Expect(TokKind k, const char* what) {
    if (!Accept(k)) {
      return Status::ParseError(StringPrintf(
          "line %d: expected %s, found '%s'", cur().line, what,
          cur().ToString().c_str()));
    }
    return Status::OK();
  }

  Result<Rule> ParseRule() {
    Rule rule;
    IFLEX_ASSIGN_OR_RETURN(rule.head, ParseHead());
    IFLEX_RETURN_NOT_OK(Expect(TokKind::kImplies, "':-'"));
    while (true) {
      IFLEX_ASSIGN_OR_RETURN(Literal lit, ParseLiteral());
      rule.body.push_back(std::move(lit));
      if (!Accept(TokKind::kComma)) break;
    }
    IFLEX_RETURN_NOT_OK(Expect(TokKind::kDot, "'.'"));
    return rule;
  }

  Result<RuleHead> ParseHead() {
    RuleHead head;
    if (cur().kind != TokKind::kIdent) {
      return Status::ParseError(
          StringPrintf("line %d: expected rule head", cur().line));
    }
    head.predicate = cur().text;
    Advance();
    IFLEX_RETURN_NOT_OK(Expect(TokKind::kLParen, "'('"));
    while (true) {
      bool annotated = Accept(TokKind::kLt);
      if (cur().kind != TokKind::kIdent) {
        return Status::ParseError(StringPrintf(
            "line %d: expected head variable", cur().line));
      }
      head.args.push_back(cur().text);
      head.annotated.push_back(annotated);
      Advance();
      if (annotated) IFLEX_RETURN_NOT_OK(Expect(TokKind::kGt, "'>'"));
      if (!Accept(TokKind::kComma)) break;
    }
    IFLEX_RETURN_NOT_OK(Expect(TokKind::kRParen, "')'"));
    head.existence = Accept(TokKind::kQuestion);
    return head;
  }

  Result<Literal> ParseLiteral() {
    if (cur().kind == TokKind::kIdent && peek().kind == TokKind::kLParen) {
      if (catalog_.features().Has(cur().text)) return ParseConstraint();
      return ParseAtom();
    }
    return ParseComparison();
  }

  Result<Literal> ParseAtom() {
    Atom atom;
    atom.predicate = cur().text;
    Advance();
    IFLEX_RETURN_NOT_OK(Expect(TokKind::kLParen, "'('"));
    while (true) {
      IFLEX_ASSIGN_OR_RETURN(Term t, ParseTerm());
      atom.args.push_back(std::move(t));
      if (!Accept(TokKind::kComma)) break;
    }
    IFLEX_RETURN_NOT_OK(Expect(TokKind::kRParen, "')'"));
    return Literal::OfAtom(std::move(atom));
  }

  Result<Literal> ParseConstraint() {
    ConstraintLit c;
    c.feature = cur().text;
    Advance();
    IFLEX_RETURN_NOT_OK(Expect(TokKind::kLParen, "'('"));
    if (cur().kind != TokKind::kIdent) {
      return Status::ParseError(StringPrintf(
          "line %d: constraint %s needs a variable", cur().line,
          c.feature.c_str()));
    }
    c.var = cur().text;
    Advance();
    if (Accept(TokKind::kComma)) {
      if (cur().kind == TokKind::kString) {
        c.param = FeatureParam::Str(cur().text);
      } else if (cur().kind == TokKind::kNumber) {
        c.param = FeatureParam::Num(cur().num);
      } else {
        return Status::ParseError(StringPrintf(
            "line %d: constraint parameter must be a literal", cur().line));
      }
      Advance();
    }
    IFLEX_RETURN_NOT_OK(Expect(TokKind::kRParen, "')'"));
    if (Accept(TokKind::kEq)) {
      if (cur().kind == TokKind::kIdent) {
        IFLEX_ASSIGN_OR_RETURN(c.value, FeatureValueFromString(cur().text));
        Advance();
      } else if (cur().kind == TokKind::kNumber) {
        if (c.param.has_value()) {
          return Status::ParseError(StringPrintf(
              "line %d: constraint %s has two parameters", cur().line,
              c.feature.c_str()));
        }
        c.param = FeatureParam::Num(cur().num);
        Advance();
      } else if (cur().kind == TokKind::kString) {
        if (c.param.has_value()) {
          return Status::ParseError(StringPrintf(
              "line %d: constraint %s has two parameters", cur().line,
              c.feature.c_str()));
        }
        c.param = FeatureParam::Str(cur().text);
        Advance();
      } else {
        return Status::ParseError(StringPrintf(
            "line %d: bad constraint value", cur().line));
      }
    }
    return Literal::OfConstraint(std::move(c));
  }

  Result<Literal> ParseComparison() {
    Comparison cmp;
    IFLEX_ASSIGN_OR_RETURN(cmp.lhs, ParseTerm());
    switch (cur().kind) {
      case TokKind::kLt:
        cmp.op = CmpOp::kLt;
        break;
      case TokKind::kLe:
        cmp.op = CmpOp::kLe;
        break;
      case TokKind::kGt:
        cmp.op = CmpOp::kGt;
        break;
      case TokKind::kGe:
        cmp.op = CmpOp::kGe;
        break;
      case TokKind::kEq:
        cmp.op = CmpOp::kEq;
        break;
      case TokKind::kNe:
        cmp.op = CmpOp::kNe;
        break;
      default:
        return Status::ParseError(StringPrintf(
            "line %d: expected comparison operator, found '%s'", cur().line,
            cur().ToString().c_str()));
    }
    Advance();
    IFLEX_ASSIGN_OR_RETURN(cmp.rhs, ParseTerm());
    // Optional additive offset: "firstPage + 5" (Table 2/T5).
    if (cur().kind == TokKind::kPlus || cur().kind == TokKind::kMinus) {
      bool neg = cur().kind == TokKind::kMinus;
      Advance();
      if (cur().kind != TokKind::kNumber) {
        return Status::ParseError(StringPrintf(
            "line %d: expected number after '+'/'-'", cur().line));
      }
      cmp.rhs_offset = neg ? -cur().num : cur().num;
      Advance();
    }
    return Literal::OfComparison(std::move(cmp));
  }

  Result<Term> ParseTerm() {
    switch (cur().kind) {
      case TokKind::kIdent: {
        std::string name = cur().text;
        Advance();
        if (name == "null" || name == "NULL") return Term::Null();
        return Term::Var(std::move(name));
      }
      case TokKind::kNumber: {
        double n = cur().num;
        Advance();
        return Term::Number(n);
      }
      case TokKind::kMinus: {
        Advance();
        if (cur().kind != TokKind::kNumber) {
          return Status::ParseError(StringPrintf(
              "line %d: expected number after '-'", cur().line));
        }
        double n = cur().num;
        Advance();
        return Term::Number(-n);
      }
      case TokKind::kString: {
        std::string s = cur().text;
        Advance();
        return Term::Str(std::move(s));
      }
      default:
        return Status::ParseError(StringPrintf(
            "line %d: expected term, found '%s'", cur().line,
            cur().ToString().c_str()));
    }
  }

  const std::vector<Tok>& toks_;
  const Catalog& catalog_;
  size_t pos_ = 0;
};

}  // namespace

Result<Program> ParseProgram(const std::string& src, const Catalog& catalog) {
  IFLEX_ASSIGN_OR_RETURN(std::vector<Tok> toks, Lex(src));
  Parser parser(toks, catalog);
  IFLEX_ASSIGN_OR_RETURN(Program prog, parser.ParseAll());
  IFLEX_RETURN_NOT_OK(prog.Validate(catalog));
  return prog;
}

}  // namespace iflex
