#ifndef IFLEX_ALOG_PROGRAM_H_
#define IFLEX_ALOG_PROGRAM_H_

#include <string>
#include <vector>

#include "alog/ast.h"
#include "alog/catalog.h"
#include "common/result.h"

namespace iflex {

/// An Alog program: skeleton rules + description rules + annotations
/// (paper §2.2). The program is a value type — the next-effort assistant
/// clones it freely to simulate candidate refinements.
class Program {
 public:
  Program() = default;

  std::vector<Rule>& rules() { return rules_; }
  const std::vector<Rule>& rules() const { return rules_; }

  void AddRule(Rule r) { rules_.push_back(std::move(r)); }

  /// The query predicate (paper §2.1: one head predicate is the query).
  /// Defaults to the head of the first rule when unset.
  const std::string& query() const;
  void set_query(std::string q) { query_ = std::move(q); }

  /// Resolves every predicate against `catalog`, marks description rules
  /// (head is a declared IE predicate), checks arities, constraint
  /// feature/param shapes, annotation placement, and rule safety
  /// (paper §2.2.2: every non-input head variable must be bound by an
  /// extensional/intensional atom or an IE/p-predicate output).
  Status Validate(const Catalog& catalog);

  /// Unfolds IE-predicate atoms in non-description rules using the
  /// description rules (paper §4), renaming description-rule variables
  /// apart. Supports several description rules per IE predicate (the
  /// unfolded program takes their union). IE predicates without any
  /// description rule are an error.
  Result<Program> Unfold(const Catalog& catalog) const;

  /// All description rules for `ie_predicate` (indices into rules()).
  std::vector<size_t> DescriptionRulesFor(const std::string& ie_predicate) const;

  /// Adds the domain constraint f(attr)=v to every description rule of
  /// `ie_predicate`, binding it to the output variable at `output_idx`
  /// (0-based among the outputs). This is how the assistant incorporates
  /// an answered question (paper §5). No-op if an equal constraint is
  /// already present.
  Status AddConstraint(const Catalog& catalog, const std::string& ie_predicate,
                       size_t output_idx, const std::string& feature,
                       FeatureParam param, FeatureValue value);

  /// Pretty-prints all rules.
  std::string ToString() const;

  /// Stable fingerprint of the program text; used as reuse-cache key.
  uint64_t Fingerprint() const;

 private:
  std::vector<Rule> rules_;
  std::string query_;
};

/// Parses Alog source into a Program. The catalog resolves which
/// identifiers are features (domain constraints) vs predicates. The
/// program is validated before being returned.
///
/// Surface syntax (see README):
///   houses(x, <p>, <a>, <h>) :- housePages(x), extractHouses(x, p, a, h).
///   schools(s)? :- schoolPages(y), extractSchools(y, s).
///   extractSchools(y, s) :- from(y, s), bold_font(s) = yes.
Result<Program> ParseProgram(const std::string& src, const Catalog& catalog);

}  // namespace iflex

#endif  // IFLEX_ALOG_PROGRAM_H_
