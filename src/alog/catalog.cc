#include "alog/catalog.h"

#include <algorithm>
#include <cctype>
#include <set>

#include "common/rng.h"
#include "common/strutil.h"

namespace iflex {

Catalog::Catalog(const Corpus* corpus, const FeatureRegistry* features)
    : corpus_(corpus), features_(features) {
  if (features_ == nullptr) {
    owned_features_ = CreateDefaultRegistry();
    features_ = owned_features_.get();
  }
  // The built-in from(x, y): conceptually all sub-spans y of x (§2.2.2);
  // the executor evaluates it lazily as expand({contain(x)}).
  Entry from_entry;
  from_entry.kind = PredicateKind::kBuiltinFrom;
  from_entry.n_inputs = 1;
  from_entry.arity = 2;
  entries_.emplace("from", std::move(from_entry));
}

Status Catalog::Declare(const std::string& name, Entry entry) {
  auto [it, inserted] = entries_.emplace(name, std::move(entry));
  (void)it;
  if (!inserted) {
    return Status::AlreadyExists("predicate already declared: " + name);
  }
  return Status::OK();
}

Status Catalog::AddTable(const std::string& name, CompactTable table) {
  Entry e;
  e.kind = PredicateKind::kExtensional;
  e.arity = table.arity();
  e.table = std::move(table);
  IFLEX_RETURN_NOT_OK(Declare(name, std::move(e)));
  table_order_.push_back(name);
  return Status::OK();
}

Status Catalog::ReplaceTable(const std::string& name, CompactTable table) {
  auto it = entries_.find(name);
  if (it == entries_.end() || it->second.kind != PredicateKind::kExtensional) {
    return Status::NotFound("no extensional table named " + name);
  }
  it->second.arity = table.arity();
  it->second.table = std::move(table);
  return Status::OK();
}

Status Catalog::DeclareIEPredicate(const std::string& name, size_t n_inputs,
                                   size_t n_outputs) {
  Entry e;
  e.kind = PredicateKind::kIEPredicate;
  e.n_inputs = n_inputs;
  e.arity = n_inputs + n_outputs;
  return Declare(name, std::move(e));
}

Status Catalog::DeclarePPredicate(const std::string& name, size_t n_inputs,
                                  size_t n_outputs, PPredicateFn fn) {
  Entry e;
  e.kind = PredicateKind::kPPredicate;
  e.n_inputs = n_inputs;
  e.arity = n_inputs + n_outputs;
  e.ppred = std::move(fn);
  return Declare(name, std::move(e));
}

Status Catalog::DeclarePFunction(const std::string& name, size_t n_args,
                                 PFunctionFn fn) {
  Entry e;
  e.kind = PredicateKind::kPFunction;
  e.arity = n_args;
  e.pfn = std::move(fn);
  return Declare(name, std::move(e));
}

bool Catalog::Has(const std::string& name) const {
  return entries_.count(name) > 0;
}

Result<PredicateKind> Catalog::KindOf(const std::string& name) const {
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    return Status::NotFound("unknown predicate: " + name);
  }
  return it->second.kind;
}

Result<size_t> Catalog::ArityOf(const std::string& name) const {
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    return Status::NotFound("unknown predicate: " + name);
  }
  return it->second.arity;
}

Result<size_t> Catalog::InputArityOf(const std::string& name) const {
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    return Status::NotFound("unknown predicate: " + name);
  }
  return it->second.n_inputs;
}

Result<const CompactTable*> Catalog::Table(const std::string& name) const {
  auto it = entries_.find(name);
  if (it == entries_.end() || it->second.kind != PredicateKind::kExtensional) {
    return Status::NotFound("no extensional table named " + name);
  }
  return &it->second.table;
}

Result<const PPredicateFn*> Catalog::PPredicate(
    const std::string& name) const {
  auto it = entries_.find(name);
  if (it == entries_.end() || it->second.kind != PredicateKind::kPPredicate) {
    return Status::NotFound("no p-predicate named " + name);
  }
  return &it->second.ppred;
}

Result<const PFunctionFn*> Catalog::PFunction(const std::string& name) const {
  auto it = entries_.find(name);
  if (it == entries_.end() || it->second.kind != PredicateKind::kPFunction) {
    return Status::NotFound("no p-function named " + name);
  }
  return &it->second.pfn;
}

std::vector<std::string> Catalog::TableNames() const { return table_order_; }

Status Catalog::MarkTokenSimilarity(const std::string& name) {
  auto it = entries_.find(name);
  if (it == entries_.end() || it->second.kind != PredicateKind::kPFunction) {
    return Status::NotFound("no p-function named " + name);
  }
  token_similarity_.insert(name);
  return Status::OK();
}

Catalog Catalog::CloneWithSampledTables(double fraction, uint64_t seed) const {
  Catalog clone(corpus_, features_);
  for (const auto& [name, entry] : entries_) {
    if (name == "from") continue;  // installed by the constructor
    Entry copy = entry;
    if (entry.kind == PredicateKind::kExtensional) {
      // Bottom-k-by-hash sampling: keep the k indices with the smallest
      // hash(seed, i). The ranking depends only on (seed, i), so
      // equal-sized tables keep *identical* index sets and different-sized
      // tables keep highly overlapping ones — join partners that the
      // generators align by index stay paired in the sample (the
      // cross-table correlation a per-page human sampler would exhibit),
      // while the sample size stays exactly k.
      size_t n = entry.table.size();
      size_t k = std::max<size_t>(
          1, static_cast<size_t>(static_cast<double>(n) * fraction + 0.5));
      k = std::min(k, n);
      std::vector<std::pair<uint64_t, size_t>> ranked;
      ranked.reserve(n);
      for (size_t i = 0; i < n; ++i) {
        ranked.emplace_back(
            Fingerprint64(StringPrintf(
                "%llu|%zu", static_cast<unsigned long long>(seed), i)),
            i);
      }
      std::partial_sort(ranked.begin(), ranked.begin() + static_cast<ptrdiff_t>(k),
                        ranked.end());
      std::vector<size_t> keep;
      keep.reserve(k);
      for (size_t j = 0; j < k; ++j) keep.push_back(ranked[j].second);
      std::sort(keep.begin(), keep.end());
      CompactTable sampled(entry.table.schema());
      for (size_t i : keep) sampled.Add(entry.table.tuples()[i]);
      copy.table = std::move(sampled);
    }
    clone.entries_.emplace(name, std::move(copy));
  }
  clone.table_order_ = table_order_;
  clone.token_similarity_ = token_similarity_;
  return clone;
}

double TokenJaccard(const std::string& a, const std::string& b) {
  auto tokenize = [](const std::string& s) {
    std::set<std::string> out;
    std::string cur;
    for (char c : s) {
      if (std::isalnum(static_cast<unsigned char>(c))) {
        cur.push_back(
            static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
      } else if (!cur.empty()) {
        out.insert(cur);
        cur.clear();
      }
    }
    if (!cur.empty()) out.insert(cur);
    return out;
  };
  std::set<std::string> ta = tokenize(a);
  std::set<std::string> tb = tokenize(b);
  if (ta.empty() && tb.empty()) return 1.0;
  size_t inter = 0;
  for (const auto& t : ta) inter += tb.count(t);
  size_t uni = ta.size() + tb.size() - inter;
  return uni == 0 ? 0.0 : static_cast<double>(inter) / static_cast<double>(uni);
}

void Catalog::RegisterBuiltinFunctions(double similarity_threshold) {
  auto similar = [similarity_threshold](
                     const Corpus& corpus,
                     const std::vector<Value>& args) -> Result<Value> {
    if (args.size() != 2) {
      return Status::InvalidArgument("similar() expects 2 arguments");
    }
    // Token sets are memoized per distinct text in the corpus-scoped
    // cache, so the quadratic filter loop does sorted-id intersections
    // instead of re-tokenizing (and re-allocating) per pair.
    TokenCache& cache = corpus.tokens();
    const std::vector<ValueId>& ta = cache.TokensOf(args[0].AsText());
    const std::vector<ValueId>& tb = cache.TokensOf(args[1].AsText());
    return Value::Bool(TokenIdJaccard(ta, tb) >= similarity_threshold);
  };
  (void)DeclarePFunction("similar", 2, similar);
  (void)DeclarePFunction("approx_match", 2, similar);
  (void)MarkTokenSimilarity("similar");
  (void)MarkTokenSimilarity("approx_match");
  (void)DeclarePFunction(
      "contains_tokens", 2,
      [](const Corpus&, const std::vector<Value>& args) -> Result<Value> {
        if (args.size() != 2) {
          return Status::InvalidArgument(
              "contains_tokens() expects 2 arguments");
        }
        return Value::Bool(
            ContainsIgnoreCase(args[0].AsText(), args[1].AsText()));
      });
}

}  // namespace iflex
