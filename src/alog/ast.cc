#include "alog/ast.h"

#include "common/strutil.h"

namespace iflex {

std::string Term::ToString() const {
  switch (kind) {
    case Kind::kVar:
      return var;
    case Kind::kString:
      return "\"" + str + "\"";
    case Kind::kNumber:
      if (num == static_cast<int64_t>(num)) {
        return StringPrintf("%lld", static_cast<long long>(num));
      }
      return StringPrintf("%g", num);
    case Kind::kNull:
      return "null";
  }
  return "?";
}

std::string Atom::ToString() const {
  std::string out = predicate + "(";
  for (size_t i = 0; i < args.size(); ++i) {
    if (i > 0) out += ", ";
    out += args[i].ToString();
  }
  return out + ")";
}

const char* CmpOpToString(CmpOp op) {
  switch (op) {
    case CmpOp::kLt:
      return "<";
    case CmpOp::kLe:
      return "<=";
    case CmpOp::kGt:
      return ">";
    case CmpOp::kGe:
      return ">=";
    case CmpOp::kEq:
      return "=";
    case CmpOp::kNe:
      return "!=";
  }
  return "?";
}

std::string Comparison::ToString() const {
  std::string out = lhs.ToString() + " " + CmpOpToString(op) + " " + rhs.ToString();
  if (rhs_offset > 0) {
    out += " + " + Term::Number(rhs_offset).ToString();
  } else if (rhs_offset < 0) {
    out += " - " + Term::Number(-rhs_offset).ToString();
  }
  return out;
}

std::string ConstraintLit::ToString() const {
  std::string out = feature + "(" + var;
  if (param.has_value()) out += ", " + param.ToString();
  out += ") = ";
  out += FeatureValueToToken(value);
  return out;
}

std::string Literal::ToString() const {
  switch (kind) {
    case Kind::kAtom:
      return atom.ToString();
    case Kind::kComparison:
      return cmp.ToString();
    case Kind::kConstraint:
      return constraint.ToString();
  }
  return "?";
}

std::string RuleHead::ToString() const {
  std::string out = predicate + "(";
  for (size_t i = 0; i < args.size(); ++i) {
    if (i > 0) out += ", ";
    bool ann = i < annotated.size() && annotated[i];
    if (ann) out += "<";
    out += args[i];
    if (ann) out += ">";
  }
  out += ")";
  if (existence) out += "?";
  return out;
}

bool Rule::has_annotations() const {
  if (head.existence) return true;
  for (bool a : head.annotated) {
    if (a) return true;
  }
  return false;
}

std::string Rule::ToString() const {
  std::string out = head.ToString() + " :- ";
  for (size_t i = 0; i < body.size(); ++i) {
    if (i > 0) out += ", ";
    out += body[i].ToString();
  }
  return out + ".";
}

}  // namespace iflex
