#ifndef IFLEX_ALOG_CATALOG_H_
#define IFLEX_ALOG_CATALOG_H_

#include <functional>
#include <memory>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "ctable/compact_table.h"
#include "features/registry.h"
#include "text/corpus.h"

namespace iflex {

/// A p-predicate procedure (paper §2.1): given bound input values, returns
/// output tuples (each sized to the number of output arguments). Stands in
/// for the Perl/Java procedures of Xlog; cleanup procedures (§2.2.4) are
/// registered the same way.
using PPredicateFn = std::function<Result<std::vector<std::vector<Value>>>(
    const Corpus&, const std::vector<Value>&)>;

/// A p-function: scalar function over bound values (e.g. approxMatch).
using PFunctionFn =
    std::function<Result<Value>(const Corpus&, const std::vector<Value>&)>;

/// The roles a predicate can play in a program.
enum class PredicateKind : uint8_t {
  kExtensional,  // a stored table
  kIntensional,  // defined by ordinary rules (never stored in the catalog)
  kIEPredicate,  // declared extractor, implemented by description rules
  kPPredicate,   // procedural predicate with an attached function
  kPFunction,    // boolean/scalar function used as a filter
  kBuiltinFrom,  // the built-in from(x, y) span extractor
};

/// Declares everything a program can reference: extensional tables,
/// IE predicates (with input/output arity), p-predicates/functions, and
/// the feature registry used by domain constraints.
class Catalog {
 public:
  explicit Catalog(const Corpus* corpus,
                   const FeatureRegistry* features = nullptr);

  const Corpus& corpus() const { return *corpus_; }
  const FeatureRegistry& features() const { return *features_; }

  /// Registers a stored table. Schema size gives the predicate's arity.
  Status AddTable(const std::string& name, CompactTable table);
  /// Replaces an existing table (used by iteration drivers).
  Status ReplaceTable(const std::string& name, CompactTable table);

  /// Declares an IE predicate: first `n_inputs` arguments are inputs
  /// (the paper's overlined variables), the rest outputs.
  Status DeclareIEPredicate(const std::string& name, size_t n_inputs,
                            size_t n_outputs);

  /// Declares a p-predicate backed by `fn` (also used for cleanup
  /// procedures).
  Status DeclarePPredicate(const std::string& name, size_t n_inputs,
                           size_t n_outputs, PPredicateFn fn);

  /// Declares a scalar p-function of `n_args` arguments.
  Status DeclarePFunction(const std::string& name, size_t n_args,
                          PFunctionFn fn);

  /// Registers the built-in text p-functions: similar(a,b) /
  /// approx_match(a,b) (token-Jaccard >= threshold) and exact token
  /// containment contains_tokens(a,b).
  void RegisterBuiltinFunctions(double similarity_threshold = 0.6);

  bool Has(const std::string& name) const;
  Result<PredicateKind> KindOf(const std::string& name) const;

  /// Full arity of a declared predicate (inputs + outputs for IE/p-preds).
  Result<size_t> ArityOf(const std::string& name) const;
  /// Input arity for IE predicates / p-predicates; 0 otherwise.
  Result<size_t> InputArityOf(const std::string& name) const;

  Result<const CompactTable*> Table(const std::string& name) const;
  Result<const PPredicateFn*> PPredicate(const std::string& name) const;
  Result<const PFunctionFn*> PFunction(const std::string& name) const;

  /// Marks a registered p-function as a token-similarity predicate:
  /// guaranteed false when its two arguments share no alphanumeric token.
  /// The executor exploits this for inverted-index join blocking (the
  /// approximate string join of the paper's technical report [20]).
  Status MarkTokenSimilarity(const std::string& name);
  bool IsTokenSimilarity(const std::string& name) const {
    return token_similarity_.count(name) > 0;
  }

  /// Names of all extensional tables (deterministic order).
  std::vector<std::string> TableNames() const;

  /// Clone of this catalog whose extensional tables are replaced by a
  /// random sample of `fraction` of their tuples (at least one tuple).
  /// Powers subset evaluation (paper §5.2). The clone shares this
  /// catalog's corpus and feature registry, which must outlive it.
  Catalog CloneWithSampledTables(double fraction, uint64_t seed) const;

 private:
  struct Entry {
    PredicateKind kind;
    size_t n_inputs = 0;
    size_t arity = 0;
    CompactTable table;
    PPredicateFn ppred;
    PFunctionFn pfn;
  };

  Status Declare(const std::string& name, Entry entry);

  const Corpus* corpus_;
  const FeatureRegistry* features_;
  std::unique_ptr<FeatureRegistry> owned_features_;
  std::unordered_map<std::string, Entry> entries_;
  std::vector<std::string> table_order_;
  std::set<std::string> token_similarity_;
};

/// Token-set Jaccard similarity of two strings (lowercased). Exposed for
/// tests and for the similar-join operator.
double TokenJaccard(const std::string& a, const std::string& b);

}  // namespace iflex

#endif  // IFLEX_ALOG_CATALOG_H_
