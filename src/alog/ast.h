#ifndef IFLEX_ALOG_AST_H_
#define IFLEX_ALOG_AST_H_

#include <string>
#include <vector>

#include "features/feature.h"

namespace iflex {

/// A term in a rule: a variable, a literal constant, or the NULL constant
/// (used in comparisons such as journalYear != null, Table 2/T4).
struct Term {
  enum class Kind : uint8_t { kVar, kString, kNumber, kNull };

  Kind kind = Kind::kVar;
  std::string var;   // kVar
  std::string str;   // kString
  double num = 0;    // kNumber

  static Term Var(std::string name) {
    Term t;
    t.kind = Kind::kVar;
    t.var = std::move(name);
    return t;
  }
  static Term Str(std::string s) {
    Term t;
    t.kind = Kind::kString;
    t.str = std::move(s);
    return t;
  }
  static Term Number(double n) {
    Term t;
    t.kind = Kind::kNumber;
    t.num = n;
    return t;
  }
  static Term Null() {
    Term t;
    t.kind = Kind::kNull;
    return t;
  }

  bool is_var() const { return kind == Kind::kVar; }
  std::string ToString() const;
};

/// A predicate atom p(t1, ..., tn). Which role the predicate plays
/// (extensional / intensional / IE / p-predicate / p-function) is resolved
/// against the Catalog during validation.
struct Atom {
  std::string predicate;
  std::vector<Term> args;

  std::string ToString() const;
};

/// Comparison operators for built-in comparison literals (p > 500000).
enum class CmpOp : uint8_t { kLt, kLe, kGt, kGe, kEq, kNe };

const char* CmpOpToString(CmpOp op);

struct Comparison {
  Term lhs;
  CmpOp op = CmpOp::kEq;
  Term rhs;
  /// Additive offset on the right side: lastPage < firstPage + 5 (Table
  /// 2/T5) parses as lhs=lastPage, rhs=firstPage, rhs_offset=5.
  double rhs_offset = 0;

  std::string ToString() const;
};

/// A domain constraint f(a)=v (paper §2.2.2), possibly parameterized:
/// numeric(p)=yes, preceded_by(p,"Price:")=yes, max_length(y)=18.
struct ConstraintLit {
  std::string feature;
  std::string var;
  FeatureParam param;
  FeatureValue value = FeatureValue::kYes;

  std::string ToString() const;
  bool operator==(const ConstraintLit& o) const {
    return feature == o.feature && var == o.var && param == o.param &&
           value == o.value;
  }
};

/// A body literal: exactly one of atom / comparison / constraint.
struct Literal {
  enum class Kind : uint8_t { kAtom, kComparison, kConstraint };

  Kind kind = Kind::kAtom;
  Atom atom;
  Comparison cmp;
  ConstraintLit constraint;

  static Literal OfAtom(Atom a) {
    Literal l;
    l.kind = Kind::kAtom;
    l.atom = std::move(a);
    return l;
  }
  static Literal OfComparison(Comparison c) {
    Literal l;
    l.kind = Kind::kComparison;
    l.cmp = std::move(c);
    return l;
  }
  static Literal OfConstraint(ConstraintLit c) {
    Literal l;
    l.kind = Kind::kConstraint;
    l.constraint = std::move(c);
    return l;
  }

  std::string ToString() const;
};

/// A rule head with the paper's annotations: `p(x, <a>)?` has an existence
/// annotation (`?`, Definition 1) and an attribute annotation on `a`
/// (Definition 2).
struct RuleHead {
  std::string predicate;
  std::vector<std::string> args;  // variable names
  std::vector<bool> annotated;    // attribute annotations, parallel to args
  bool existence = false;

  std::string ToString() const;
};

/// One Alog rule. `is_description` marks predicate description rules
/// (head is an IE predicate); set during validation.
struct Rule {
  RuleHead head;
  std::vector<Literal> body;
  bool is_description = false;

  /// The pair (f, A) of paper §2.2.3.
  bool has_annotations() const;

  std::string ToString() const;
};

}  // namespace iflex

#endif  // IFLEX_ALOG_AST_H_
