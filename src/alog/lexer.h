#ifndef IFLEX_ALOG_LEXER_H_
#define IFLEX_ALOG_LEXER_H_

#include <string>
#include <vector>

#include "common/result.h"

namespace iflex {

/// Token kinds of the Alog surface syntax.
enum class TokKind : uint8_t {
  kIdent,    // houses, extractHouses, bold_font, yes
  kNumber,   // 500000, 4.5
  kString,   // "Price:"
  kImplies,  // :-
  kLParen,
  kRParen,
  kComma,
  kDot,      // rule terminator
  kQuestion, // existence annotation
  kLt,
  kLe,
  kGt,
  kGe,
  kEq,
  kNe,
  kPlus,
  kMinus,
  kEnd,
};

struct Tok {
  TokKind kind;
  std::string text;  // ident / string payload
  double num = 0;    // number payload
  int line = 0;

  std::string ToString() const;
};

/// Tokenizes Alog source. Comments run from '%' or '#' to end of line.
/// A '.' is a rule terminator unless it continues a number ("4.5").
Result<std::vector<Tok>> Lex(const std::string& src);

}  // namespace iflex

#endif  // IFLEX_ALOG_LEXER_H_
