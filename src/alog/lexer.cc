#include "alog/lexer.h"

#include <cctype>

#include "common/strutil.h"
#include "resilience/failpoint.h"

namespace iflex {

std::string Tok::ToString() const {
  switch (kind) {
    case TokKind::kIdent:
      return text;
    case TokKind::kNumber:
      return StringPrintf("%g", num);
    case TokKind::kString:
      return "\"" + text + "\"";
    case TokKind::kImplies:
      return ":-";
    case TokKind::kLParen:
      return "(";
    case TokKind::kRParen:
      return ")";
    case TokKind::kComma:
      return ",";
    case TokKind::kDot:
      return ".";
    case TokKind::kQuestion:
      return "?";
    case TokKind::kLt:
      return "<";
    case TokKind::kLe:
      return "<=";
    case TokKind::kGt:
      return ">";
    case TokKind::kGe:
      return ">=";
    case TokKind::kEq:
      return "=";
    case TokKind::kNe:
      return "!=";
    case TokKind::kPlus:
      return "+";
    case TokKind::kMinus:
      return "-";
    case TokKind::kEnd:
      return "<end>";
  }
  return "?";
}

Result<std::vector<Tok>> Lex(const std::string& src) {
  IFLEX_FAIL_POINT("alog.lexer");
  std::vector<Tok> out;
  int line = 1;
  size_t i = 0;
  auto push = [&](TokKind k, std::string text = "", double num = 0) {
    out.push_back(Tok{k, std::move(text), num, line});
  };
  while (i < src.size()) {
    char c = src[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '%' || c == '#') {
      while (i < src.size() && src[i] != '\n') ++i;
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t b = i;
      while (i < src.size() && (std::isalnum(static_cast<unsigned char>(src[i])) ||
                                src[i] == '_')) {
        ++i;
      }
      push(TokKind::kIdent, src.substr(b, i - b));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t b = i;
      while (i < src.size() && std::isdigit(static_cast<unsigned char>(src[i]))) {
        ++i;
      }
      // A '.' continues the number only when followed by a digit;
      // otherwise it terminates the rule.
      if (i + 1 < src.size() && src[i] == '.' &&
          std::isdigit(static_cast<unsigned char>(src[i + 1]))) {
        ++i;
        while (i < src.size() &&
               std::isdigit(static_cast<unsigned char>(src[i]))) {
          ++i;
        }
      }
      push(TokKind::kNumber, "", std::strtod(src.substr(b, i - b).c_str(), nullptr));
      continue;
    }
    switch (c) {
      case '"': {
        size_t b = ++i;
        std::string text;
        while (i < src.size() && src[i] != '"') {
          if (src[i] == '\\' && i + 1 < src.size()) {
            char esc = src[i + 1];
            if (esc == 'n') {
              text.push_back('\n');
            } else {
              text.push_back(esc);
            }
            i += 2;
            continue;
          }
          text.push_back(src[i]);
          ++i;
        }
        if (i >= src.size()) {
          return Status::ParseError(
              StringPrintf("unterminated string at line %d", line));
        }
        ++i;  // closing quote
        (void)b;
        push(TokKind::kString, std::move(text));
        break;
      }
      case ':':
        if (i + 1 < src.size() && src[i + 1] == '-') {
          push(TokKind::kImplies);
          i += 2;
        } else {
          return Status::ParseError(
              StringPrintf("stray ':' at line %d", line));
        }
        break;
      case '(':
        push(TokKind::kLParen);
        ++i;
        break;
      case ')':
        push(TokKind::kRParen);
        ++i;
        break;
      case ',':
        push(TokKind::kComma);
        ++i;
        break;
      case '.':
        push(TokKind::kDot);
        ++i;
        break;
      case '?':
        push(TokKind::kQuestion);
        ++i;
        break;
      case '<':
        if (i + 1 < src.size() && src[i + 1] == '=') {
          push(TokKind::kLe);
          i += 2;
        } else {
          push(TokKind::kLt);
          ++i;
        }
        break;
      case '>':
        if (i + 1 < src.size() && src[i + 1] == '=') {
          push(TokKind::kGe);
          i += 2;
        } else {
          push(TokKind::kGt);
          ++i;
        }
        break;
      case '=':
        push(TokKind::kEq);
        ++i;
        break;
      case '+':
        push(TokKind::kPlus);
        ++i;
        break;
      case '-':
        push(TokKind::kMinus);
        ++i;
        break;
      case '!':
        if (i + 1 < src.size() && src[i + 1] == '=') {
          push(TokKind::kNe);
          i += 2;
        } else {
          return Status::ParseError(
              StringPrintf("stray '!' at line %d", line));
        }
        break;
      default:
        return Status::ParseError(
            StringPrintf("unexpected character '%c' at line %d", c, line));
    }
  }
  push(TokKind::kEnd);
  return out;
}

}  // namespace iflex
