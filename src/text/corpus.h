#ifndef IFLEX_TEXT_CORPUS_H_
#define IFLEX_TEXT_CORPUS_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/intern.h"
#include "common/result.h"
#include "text/document.h"

namespace iflex {

/// Owns the documents of an extraction session and assigns DocIds. All
/// layers (compact tables, operators, features) refer to documents through
/// a `const Corpus&`.
class Corpus {
 public:
  Corpus()
      : interner_(std::make_unique<StringInterner>()),
        tokens_(std::make_unique<TokenCache>(interner_.get())) {}
  Corpus(const Corpus&) = delete;
  Corpus& operator=(const Corpus&) = delete;
  Corpus(Corpus&&) = default;
  Corpus& operator=(Corpus&&) = default;

  /// Registers `doc`, assigning it the next DocId. Returns the id.
  DocId Add(Document doc);

  size_t size() const { return docs_.size(); }

  /// Document by id; the id must have been returned by Add().
  const Document& Get(DocId id) const { return *docs_[id]; }

  /// Document by name, or NotFound.
  Result<DocId> Find(const std::string& name) const;

  /// Text of a span, resolved through the owning document.
  std::string_view TextOf(const Span& span) const {
    return Get(span.doc).TextOf(span);
  }

  /// Corpus-scoped string pool: value texts and tokens interned here get
  /// ids that are stable for the session (subset catalogs share the
  /// corpus, so ids carry across refinement iterations). Internally
  /// synchronized, hence usable through a const Corpus&.
  StringInterner& interner() const { return *interner_; }

  /// Memoized tokenizer for token-similarity predicates and the sim-join
  /// token index. Internally synchronized.
  TokenCache& tokens() const { return *tokens_; }

 private:
  std::vector<std::unique_ptr<Document>> docs_;
  std::unordered_map<std::string, DocId> by_name_;
  std::unique_ptr<StringInterner> interner_;
  std::unique_ptr<TokenCache> tokens_;
};

}  // namespace iflex

#endif  // IFLEX_TEXT_CORPUS_H_
