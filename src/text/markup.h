#ifndef IFLEX_TEXT_MARKUP_H_
#define IFLEX_TEXT_MARKUP_H_

#include <cstdint>
#include <vector>

namespace iflex {

/// Presentation/structure annotations a document carries alongside its
/// text. These drive the "syntactic" text features of the paper
/// (bold-font, italic-font, hyperlinked, ...) plus the structural ones
/// (in-list, in-title) and the label-based ones (prec-label-*).
enum class MarkupKind : uint8_t {
  kBold = 0,
  kItalic,
  kUnderline,
  kHyperlink,
  kListItem,
  kTitle,
  kLabel,  // section headers such as "Panelists:" used by prec-label-*
};

inline constexpr int kNumMarkupKinds = 7;

/// A sorted set of non-overlapping [begin, end) ranges for one markup kind
/// within one document.
class MarkupLayer {
 public:
  /// Adds a range; ranges may be added out of order. Overlapping or
  /// touching ranges are coalesced lazily on first query.
  void Add(uint32_t begin, uint32_t end);

  /// True if [begin, end) is fully covered by one range.
  bool Covers(uint32_t begin, uint32_t end) const;

  /// True if [begin, end) is covered and the characters immediately
  /// adjacent on both sides are *not* covered (the paper's
  /// "distinct-yes": the span has the property but its surroundings do
  /// not). A range that abuts the document edge counts as distinct there.
  bool CoversDistinctly(uint32_t begin, uint32_t end) const;

  /// True if any range intersects [begin, end).
  bool Intersects(uint32_t begin, uint32_t end) const;

  /// Maximal covered sub-ranges of [begin, end): each returned range is the
  /// intersection of one stored range with [begin, end).
  std::vector<std::pair<uint32_t, uint32_t>> MaximalRunsWithin(
      uint32_t begin, uint32_t end) const;

  /// All ranges fully inside [begin, end) whose neighbours are uncovered
  /// (i.e. candidates for distinct-yes values).
  std::vector<std::pair<uint32_t, uint32_t>> DistinctRunsWithin(
      uint32_t begin, uint32_t end) const;

  /// All stored ranges, coalesced and sorted.
  const std::vector<std::pair<uint32_t, uint32_t>>& ranges() const {
    Normalize();
    return ranges_;
  }

  /// Coalesces any pending ranges now. Queries are `const` but lazily
  /// normalize on first use, which is a data race when several pool
  /// threads read one document concurrently; Corpus::Add freezes every
  /// layer up front so reads after registration are genuinely read-only.
  void Freeze() { Normalize(); }

  bool empty() const { return ranges_.empty() && pending_.empty(); }

 private:
  void Normalize() const;

  mutable std::vector<std::pair<uint32_t, uint32_t>> ranges_;
  mutable std::vector<std::pair<uint32_t, uint32_t>> pending_;
};

}  // namespace iflex

#endif  // IFLEX_TEXT_MARKUP_H_
