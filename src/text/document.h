#ifndef IFLEX_TEXT_DOCUMENT_H_
#define IFLEX_TEXT_DOCUMENT_H_

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "text/markup.h"
#include "text/span.h"

namespace iflex {

/// A token: [begin, end) character range of the document text, with
/// surrounding punctuation already stripped (so "$351,000." tokenizes to
/// "$351,000").
struct Token {
  uint32_t begin = 0;
  uint32_t end = 0;
};

/// A document (a Web page or a record fragment of one) consisting of plain
/// text plus markup layers. Documents are immutable once registered in a
/// Corpus; the token index is computed on construction.
class Document {
 public:
  Document() = default;
  /// `name` is a human-readable identifier ("imdb/42"); markup is attached
  /// via mutable_layer() before the document is frozen by a Corpus.
  Document(std::string name, std::string text);

  DocId id() const { return id_; }
  const std::string& name() const { return name_; }
  const std::string& text() const { return text_; }
  uint32_t size() const { return static_cast<uint32_t>(text_.size()); }

  const MarkupLayer& layer(MarkupKind kind) const {
    return layers_[static_cast<int>(kind)];
  }
  MarkupLayer& mutable_layer(MarkupKind kind) {
    return layers_[static_cast<int>(kind)];
  }

  /// Text of a span of this document (span.doc must match id()).
  std::string_view TextOf(const Span& span) const;

  /// The span covering the whole document.
  Span FullSpan() const { return Span(id_, 0, size()); }

  /// Tokens, in document order.
  const std::vector<Token>& tokens() const { return tokens_; }

  /// Index of the first token whose begin >= pos, tokens().size() if none.
  size_t FirstTokenAtOrAfter(uint32_t pos) const;
  /// Index one past the last token whose end <= pos.
  size_t TokensEndingBy(uint32_t pos) const;

  /// All token-aligned sub-spans of `span` (spans that start at a token
  /// begin and end at a token end, both inside `span`), capped at
  /// `max_spans` (returns true if the cap was not hit). This realizes the
  /// paper's "all sub-spans of s" at token granularity.
  bool EnumerateSubSpans(const Span& span, size_t max_spans,
                         std::vector<Span>* out) const;

  /// Number of token-aligned sub-spans of `span` (without materializing).
  size_t CountSubSpans(const Span& span) const;

  /// Snaps `span` outward is not allowed; returns the largest token-aligned
  /// span inside `span`, or an empty span when no token fits.
  Span AlignToTokens(const Span& span) const;

  /// The nearest label (MarkupKind::kLabel range) that ends at or before
  /// `pos`; nullopt when the document has no label before `pos`.
  std::optional<Span> PrecedingLabel(uint32_t pos) const;

  /// Called by Corpus on registration.
  void set_id(DocId id) { id_ = id; }

  /// Coalesces all markup layers so every later query is read-only —
  /// required before documents are shared across extraction shards.
  void Freeze() {
    for (MarkupLayer& layer : layers_) layer.Freeze();
  }

 private:
  void Tokenize();

  DocId id_ = kInvalidDocId;
  std::string name_;
  std::string text_;
  MarkupLayer layers_[kNumMarkupKinds];
  std::vector<Token> tokens_;
};

}  // namespace iflex

#endif  // IFLEX_TEXT_DOCUMENT_H_
