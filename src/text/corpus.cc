#include "text/corpus.h"

#include "common/strutil.h"

namespace iflex {

DocId Corpus::Add(Document doc) {
  DocId id = static_cast<DocId>(docs_.size());
  doc.set_id(id);
  doc.Freeze();  // markup queries after registration must be read-only
  by_name_.emplace(doc.name(), id);
  docs_.push_back(std::make_unique<Document>(std::move(doc)));
  return id;
}

Result<DocId> Corpus::Find(const std::string& name) const {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) {
    return Status::NotFound(StringPrintf("no document named %s", name.c_str()));
  }
  return it->second;
}

}  // namespace iflex
