#ifndef IFLEX_TEXT_SPAN_H_
#define IFLEX_TEXT_SPAN_H_

#include <cstdint>
#include <functional>
#include <string>

namespace iflex {

/// Identifier of a document inside a Corpus.
using DocId = uint32_t;

inline constexpr DocId kInvalidDocId = UINT32_MAX;

/// A contiguous region [begin, end) of a document's text. Spans are the
/// unit of extraction: every extracted attribute value is (conceptually) a
/// span of some source document.
struct Span {
  DocId doc = kInvalidDocId;
  uint32_t begin = 0;
  uint32_t end = 0;

  Span() = default;
  Span(DocId d, uint32_t b, uint32_t e) : doc(d), begin(b), end(e) {}

  uint32_t length() const { return end - begin; }
  bool empty() const { return begin >= end; }

  /// True when `other` lies fully inside this span (same document).
  bool Contains(const Span& other) const {
    return doc == other.doc && begin <= other.begin && other.end <= end;
  }

  /// True when the two spans share at least one character.
  bool Overlaps(const Span& other) const {
    return doc == other.doc && begin < other.end && other.begin < end;
  }

  bool operator==(const Span& o) const {
    return doc == o.doc && begin == o.begin && end == o.end;
  }
  bool operator!=(const Span& o) const { return !(*this == o); }
  bool operator<(const Span& o) const {
    if (doc != o.doc) return doc < o.doc;
    if (begin != o.begin) return begin < o.begin;
    return end < o.end;
  }

  /// Debug form "doc:begin-end".
  std::string ToString() const;
};

struct SpanHash {
  size_t operator()(const Span& s) const {
    uint64_t x = (static_cast<uint64_t>(s.doc) << 40) ^
                 (static_cast<uint64_t>(s.begin) << 20) ^ s.end;
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdULL;
    x ^= x >> 33;
    return static_cast<size_t>(x);
  }
};

}  // namespace iflex

#endif  // IFLEX_TEXT_SPAN_H_
