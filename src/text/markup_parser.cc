#include "text/markup_parser.h"

#include <algorithm>
#include <vector>

#include "common/strutil.h"
#include "obs/trace.h"

namespace iflex {

namespace {

struct TagInfo {
  std::string_view name;
  MarkupKind kind;
};

constexpr TagInfo kTags[] = {
    {"b", MarkupKind::kBold},          {"i", MarkupKind::kItalic},
    {"u", MarkupKind::kUnderline},     {"a", MarkupKind::kHyperlink},
    {"li", MarkupKind::kListItem},     {"title", MarkupKind::kTitle},
    {"label", MarkupKind::kLabel},
};

const TagInfo* FindTag(std::string_view name) {
  for (const auto& t : kTags) {
    if (t.name == name) return &t;
  }
  return nullptr;
}

// Nesting depth cap: real markup in this corpus nests a handful of levels;
// anything deeper is malformed (or adversarial) input, rejected before the
// open-tag stack can grow with the document size.
constexpr size_t kMaxMarkupDepth = 64;

}  // namespace

Result<Document> ParseMarkup(std::string name, std::string_view markup) {
  obs::TraceSpan span(obs::DefaultTracer(), "text.parse_markup", name);
  std::string text;
  text.reserve(markup.size());
  struct Open {
    MarkupKind kind;
    uint32_t begin;
    std::string_view tag;
    size_t at;  // offset of the opening '<' in the raw markup
  };
  std::vector<Open> stack;
  std::vector<std::tuple<MarkupKind, uint32_t, uint32_t>> ranges;

  size_t i = 0;
  while (i < markup.size()) {
    char c = markup[i];
    if (c != '<') {
      text.push_back(c);
      ++i;
      continue;
    }
    size_t close = markup.find('>', i);
    if (close == std::string_view::npos) {
      return Status::ParseError(
          StringPrintf("unterminated '<' at offset %zu in document %s", i,
                       name.c_str()));
    }
    std::string_view inner = markup.substr(i + 1, close - i - 1);
    bool is_close = !inner.empty() && inner.front() == '/';
    if (is_close) inner.remove_prefix(1);
    const TagInfo* tag = FindTag(inner);
    if (tag == nullptr) {
      return Status::ParseError(StringPrintf(
          "unknown tag <%.*s> in document %s", static_cast<int>(inner.size()),
          inner.data(), name.c_str()));
    }
    if (!is_close) {
      if (stack.size() >= kMaxMarkupDepth) {
        return Status::ParseError(StringPrintf(
            "markup nesting deeper than %zu at offset %zu in document %s",
            kMaxMarkupDepth, i, name.c_str()));
      }
      stack.push_back(Open{tag->kind, static_cast<uint32_t>(text.size()),
                           tag->name, i});
    } else {
      if (stack.empty() || stack.back().kind != tag->kind) {
        return Status::ParseError(StringPrintf(
            "mismatched </%.*s> at offset %zu in document %s",
            static_cast<int>(inner.size()), inner.data(), i, name.c_str()));
      }
      ranges.emplace_back(stack.back().kind, stack.back().begin,
                          static_cast<uint32_t>(text.size()));
      stack.pop_back();
    }
    i = close + 1;
  }
  if (!stack.empty()) {
    return Status::ParseError(StringPrintf(
        "unclosed <%.*s> opened at offset %zu in document %s",
        static_cast<int>(stack.back().tag.size()), stack.back().tag.data(),
        stack.back().at, name.c_str()));
  }

  Document doc(std::move(name), std::move(text));
  for (const auto& [kind, b, e] : ranges) {
    doc.mutable_layer(kind).Add(b, e);
  }
  return doc;
}

std::string RenderMarkup(const Document& doc) {
  // Collect open/close events per position; close events sort before opens
  // at the same position so tags nest sanely for non-overlapping layers.
  struct Event {
    uint32_t pos;
    bool open;
    int kind;
  };
  std::vector<Event> events;
  for (int k = 0; k < kNumMarkupKinds; ++k) {
    for (const auto& r :
         doc.layer(static_cast<MarkupKind>(k)).ranges()) {
      events.push_back(Event{r.first, true, k});
      events.push_back(Event{r.second, false, k});
    }
  }
  std::sort(events.begin(), events.end(), [](const Event& a, const Event& b) {
    if (a.pos != b.pos) return a.pos < b.pos;
    return a.open < b.open;  // closes first
  });
  std::string out;
  size_t ev = 0;
  const std::string& text = doc.text();
  for (uint32_t pos = 0; pos <= text.size(); ++pos) {
    while (ev < events.size() && events[ev].pos == pos) {
      const TagInfo& t = kTags[events[ev].kind];
      out.push_back('<');
      if (!events[ev].open) out.push_back('/');
      out.append(t.name);
      out.push_back('>');
      ++ev;
    }
    if (pos < text.size()) out.push_back(text[pos]);
  }
  return out;
}

}  // namespace iflex
