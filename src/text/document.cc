#include "text/document.h"

#include <algorithm>
#include <cctype>

namespace iflex {

namespace {

bool IsTokenChar(char c) {
  return !std::isspace(static_cast<unsigned char>(c));
}

// Punctuation stripped from token edges. '$' is kept (prices), digits and
// inner punctuation are untouched.
bool IsStrippablePunct(char c) {
  switch (c) {
    case '.':
    case ',':
    case ';':
    case ':':
    case '!':
    case '?':
    case ')':
    case '(':
    case '[':
    case ']':
    case '"':
    case '\'':
      return true;
    default:
      return false;
  }
}

}  // namespace

Document::Document(std::string name, std::string text)
    : name_(std::move(name)), text_(std::move(text)) {
  Tokenize();
}

void Document::Tokenize() {
  tokens_.clear();
  uint32_t n = size();
  uint32_t i = 0;
  while (i < n) {
    while (i < n && !IsTokenChar(text_[i])) ++i;
    if (i >= n) break;
    uint32_t b = i;
    while (i < n && IsTokenChar(text_[i])) ++i;
    uint32_t e = i;
    // Strip edge punctuation, e.g. "(4700)," -> "4700".
    while (b < e && IsStrippablePunct(text_[b])) ++b;
    while (e > b && IsStrippablePunct(text_[e - 1])) --e;
    if (b < e) tokens_.push_back(Token{b, e});
  }
}

std::string_view Document::TextOf(const Span& span) const {
  if (span.begin >= text_.size()) return {};
  uint32_t end = std::min<uint32_t>(span.end, size());
  if (span.begin >= end) return {};
  return std::string_view(text_).substr(span.begin, end - span.begin);
}

size_t Document::FirstTokenAtOrAfter(uint32_t pos) const {
  return static_cast<size_t>(
      std::lower_bound(tokens_.begin(), tokens_.end(), pos,
                       [](const Token& t, uint32_t p) { return t.begin < p; }) -
      tokens_.begin());
}

size_t Document::TokensEndingBy(uint32_t pos) const {
  return static_cast<size_t>(
      std::upper_bound(tokens_.begin(), tokens_.end(), pos,
                       [](uint32_t p, const Token& t) { return p < t.end; }) -
      tokens_.begin());
}

bool Document::EnumerateSubSpans(const Span& span, size_t max_spans,
                                 std::vector<Span>* out) const {
  size_t first = FirstTokenAtOrAfter(span.begin);
  size_t last = TokensEndingBy(span.end);  // one past
  for (size_t i = first; i < last; ++i) {
    for (size_t j = i; j < last; ++j) {
      if (out->size() >= max_spans) return false;
      out->push_back(Span(id_, tokens_[i].begin, tokens_[j].end));
    }
  }
  return true;
}

size_t Document::CountSubSpans(const Span& span) const {
  size_t first = FirstTokenAtOrAfter(span.begin);
  size_t last = TokensEndingBy(span.end);
  size_t k = last > first ? last - first : 0;
  return k * (k + 1) / 2;
}

Span Document::AlignToTokens(const Span& span) const {
  size_t first = FirstTokenAtOrAfter(span.begin);
  size_t last = TokensEndingBy(span.end);
  if (first >= last) return Span(id_, span.begin, span.begin);
  return Span(id_, tokens_[first].begin, tokens_[last - 1].end);
}

std::optional<Span> Document::PrecedingLabel(uint32_t pos) const {
  const auto& ranges = layer(MarkupKind::kLabel).ranges();
  // Last label range whose end <= pos.
  auto it = std::upper_bound(
      ranges.begin(), ranges.end(), pos,
      [](uint32_t p, const std::pair<uint32_t, uint32_t>& r) {
        return p < r.second;
      });
  if (it == ranges.begin()) return std::nullopt;
  --it;
  return Span(id_, it->first, it->second);
}

}  // namespace iflex
