#include "text/span.h"

#include "common/strutil.h"

namespace iflex {

std::string Span::ToString() const {
  return StringPrintf("%u:%u-%u", doc, begin, end);
}

}  // namespace iflex
