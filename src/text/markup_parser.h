#ifndef IFLEX_TEXT_MARKUP_PARSER_H_
#define IFLEX_TEXT_MARKUP_PARSER_H_

#include <string>
#include <string_view>

#include "common/result.h"
#include "text/document.h"

namespace iflex {

/// Parses a lightweight HTML-like markup into a Document. Supported tags
/// (must nest properly): <b> <i> <u> <a> <li> <title> <label>. Everything
/// else is literal text. Example:
///
///   ParseMarkup("house", "Price: <b>$351,000</b>\nSchool: <i>Lincoln</i>")
///
/// The tag characters themselves are removed from the document text; the
/// corresponding character ranges are recorded in the markup layers. This
/// is the format the synthetic page generators and the examples use.
Result<Document> ParseMarkup(std::string name, std::string_view markup);

/// Inverse-ish of ParseMarkup for debugging: renders the document text with
/// tags re-inserted.
std::string RenderMarkup(const Document& doc);

}  // namespace iflex

#endif  // IFLEX_TEXT_MARKUP_PARSER_H_
