#include "text/markup.h"

#include <algorithm>

namespace iflex {

void MarkupLayer::Add(uint32_t begin, uint32_t end) {
  if (begin >= end) return;
  pending_.emplace_back(begin, end);
}

void MarkupLayer::Normalize() const {
  if (pending_.empty()) return;
  ranges_.insert(ranges_.end(), pending_.begin(), pending_.end());
  pending_.clear();
  std::sort(ranges_.begin(), ranges_.end());
  std::vector<std::pair<uint32_t, uint32_t>> merged;
  for (const auto& r : ranges_) {
    if (!merged.empty() && r.first <= merged.back().second) {
      merged.back().second = std::max(merged.back().second, r.second);
    } else {
      merged.push_back(r);
    }
  }
  ranges_ = std::move(merged);
}

namespace {
// Index of the first range whose end is > pos, in a normalized vector.
size_t LowerBoundRange(
    const std::vector<std::pair<uint32_t, uint32_t>>& ranges, uint32_t pos) {
  return static_cast<size_t>(
      std::lower_bound(ranges.begin(), ranges.end(), pos,
                       [](const std::pair<uint32_t, uint32_t>& r,
                          uint32_t p) { return r.second <= p; }) -
      ranges.begin());
}
}  // namespace

bool MarkupLayer::Covers(uint32_t begin, uint32_t end) const {
  Normalize();
  if (begin >= end) return false;
  size_t i = LowerBoundRange(ranges_, begin);
  return i < ranges_.size() && ranges_[i].first <= begin &&
         end <= ranges_[i].second;
}

bool MarkupLayer::CoversDistinctly(uint32_t begin, uint32_t end) const {
  Normalize();
  if (begin >= end) return false;
  size_t i = LowerBoundRange(ranges_, begin);
  if (i >= ranges_.size()) return false;
  const auto& r = ranges_[i];
  // The covering range must not extend beyond the span on either side,
  // because coalesced ranges are maximal.
  return r.first == begin && r.second == end;
}

bool MarkupLayer::Intersects(uint32_t begin, uint32_t end) const {
  Normalize();
  if (begin >= end) return false;
  size_t i = LowerBoundRange(ranges_, begin);
  return i < ranges_.size() && ranges_[i].first < end;
}

std::vector<std::pair<uint32_t, uint32_t>> MarkupLayer::MaximalRunsWithin(
    uint32_t begin, uint32_t end) const {
  Normalize();
  std::vector<std::pair<uint32_t, uint32_t>> out;
  for (size_t i = LowerBoundRange(ranges_, begin);
       i < ranges_.size() && ranges_[i].first < end; ++i) {
    uint32_t b = std::max(ranges_[i].first, begin);
    uint32_t e = std::min(ranges_[i].second, end);
    if (b < e) out.emplace_back(b, e);
  }
  return out;
}

std::vector<std::pair<uint32_t, uint32_t>> MarkupLayer::DistinctRunsWithin(
    uint32_t begin, uint32_t end) const {
  Normalize();
  std::vector<std::pair<uint32_t, uint32_t>> out;
  for (size_t i = LowerBoundRange(ranges_, begin);
       i < ranges_.size() && ranges_[i].first < end; ++i) {
    // A stored (coalesced) range is maximal, so its neighbours are
    // uncovered by construction; it only qualifies if it lies fully inside
    // the query window.
    if (ranges_[i].first >= begin && ranges_[i].second <= end) {
      out.push_back(ranges_[i]);
    }
  }
  return out;
}

}  // namespace iflex
