#ifndef IFLEX_RESILIENCE_FAILPOINT_H_
#define IFLEX_RESILIENCE_FAILPOINT_H_

#include <atomic>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace iflex {
namespace resilience {

/// Deterministic fail-point framework (RocksDB/TiKV style): named sites in
/// the code evaluate an injected action when armed and are a single
/// relaxed atomic load when not. Configuration comes from the
/// IFLEX_FAILPOINTS environment variable (read once, at first use) or from
/// FailPoints::Configure in tests:
///
///   IFLEX_FAILPOINTS="alog.lexer=error,exec.shard=delay:5|every:3"
///
/// Grammar: comma-separated `site=clause(|clause)*` entries with clauses
///   error     the site reports an injected ExecutionError (or throws
///             FailPointError at exception-based sites, or degrades at
///             sites with a built-in fallback such as the reuse cache)
///   delay:N   the site sleeps N milliseconds before proceeding
///   every:K   the error/delay clauses fire only on every K-th hit
///             (1-based: hits K, 2K, 3K, ...); default every hit
///
/// Hit counting is per-site and atomic, so `every:K` is deterministic for
/// a serial execution and exact-in-aggregate for parallel ones.
///
/// Durability sites (docs/ROBUSTNESS.md, src/durability/):
///   serve.journal.append   torn journal write — half the frame persists,
///                          the append is rejected, the writer breaks
///   serve.journal.fsync    journal fdatasync fails; the writer breaks
///   serve.snapshot.write   torn snapshot .tmp write; no rename, the
///                          previous snapshot stays authoritative
class FailPoints {
 public:
  /// Process-wide registry (sites are global names).
  static FailPoints& Instance();

  /// Replaces the active configuration. Empty spec disarms everything.
  /// Unknown clauses or malformed entries return kInvalidArgument and
  /// leave the previous configuration in place.
  Status Configure(std::string_view spec);

  /// Disarms all sites and resets hit counters.
  void Clear();

  /// True when any site is armed — the fast-path gate.
  static bool Active() {
    return active_count_.load(std::memory_order_relaxed) > 0;
  }

  /// Evaluates the site: applies any delay clause inline (sleep) and
  /// returns true when an error clause fires on this hit. Call only after
  /// Active() returned true.
  bool Hit(std::string_view site);

  /// Total hits observed at `site` since the last Configure/Clear.
  uint64_t HitCount(std::string_view site) const;

  /// Names of currently armed sites (for --help / docs tooling).
  std::vector<std::string> ArmedSites() const;

 private:
  FailPoints();
  struct Impl;
  Impl* impl_;

  static std::atomic<int> active_count_;
};

/// Thrown by fail-point sites that live inside TaskPool tasks, where no
/// Status channel exists; the pool's batch machinery ferries it to the
/// joining thread, which converts it back into a Status.
class FailPointError : public std::runtime_error {
 public:
  explicit FailPointError(const std::string& site)
      : std::runtime_error("fail point '" + site + "' fired") {}
};

/// Status-channel site: OK normally, injected ExecutionError when armed
/// and firing.
inline Status FailPointStatus(std::string_view site) {
  if (!FailPoints::Active()) return Status::OK();
  if (!FailPoints::Instance().Hit(site)) return Status::OK();
  return Status::ExecutionError("fail point '" + std::string(site) +
                                "' fired");
}

/// Boolean site for code with a built-in degradation path (e.g. a cache
/// lookup that can report a miss).
inline bool FailPointFired(std::string_view site) {
  return FailPoints::Active() && FailPoints::Instance().Hit(site);
}

/// Exception-channel site for TaskPool task bodies.
inline void FailPointMaybeThrow(std::string_view site) {
  if (FailPoints::Active() && FailPoints::Instance().Hit(site)) {
    throw FailPointError(std::string(site));
  }
}

/// Propagating form for functions returning Status/Result.
#define IFLEX_FAIL_POINT(site) \
  IFLEX_RETURN_NOT_OK(::iflex::resilience::FailPointStatus(site))

}  // namespace resilience
}  // namespace iflex

#endif  // IFLEX_RESILIENCE_FAILPOINT_H_
