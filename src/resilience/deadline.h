#ifndef IFLEX_RESILIENCE_DEADLINE_H_
#define IFLEX_RESILIENCE_DEADLINE_H_

#include <atomic>
#include <chrono>
#include <limits>
#include <memory>

#include "common/status.h"

namespace iflex {
namespace resilience {

/// Absolute time bound on an operation, steady-clock based so wall-clock
/// adjustments never extend or shrink it. Value type: copying a Deadline
/// copies the time point, so a parent can hand children a tighter bound
/// with Sooner() (hierarchical deadlines). The default Deadline never
/// expires, which keeps it safe to embed in options structs.
class Deadline {
 public:
  using Clock = std::chrono::steady_clock;
  using TimePoint = Clock::time_point;

  /// Never expires.
  Deadline() : tp_(TimePoint::max()) {}

  static Deadline Never() { return Deadline(); }
  static Deadline At(TimePoint tp) { return Deadline(tp); }
  static Deadline After(std::chrono::nanoseconds d) {
    return Deadline(Clock::now() + d);
  }
  static Deadline AfterMillis(int64_t ms) {
    return After(std::chrono::milliseconds(ms));
  }

  bool IsNever() const { return tp_ == TimePoint::max(); }
  bool Expired() const { return !IsNever() && Clock::now() >= tp_; }
  TimePoint time() const { return tp_; }

  /// Seconds until expiry; negative when already expired, +inf for Never.
  double RemainingSeconds() const {
    if (IsNever()) return std::numeric_limits<double>::infinity();
    return std::chrono::duration<double>(tp_ - Clock::now()).count();
  }

  /// The tighter of two bounds — how a child operation combines its own
  /// deadline with its parent's.
  static Deadline Sooner(const Deadline& a, const Deadline& b) {
    return a.tp_ < b.tp_ ? a : b;
  }

  bool operator==(const Deadline& other) const { return tp_ == other.tp_; }

 private:
  explicit Deadline(TimePoint tp) : tp_(tp) {}

  TimePoint tp_;
};

namespace internal {

struct CancelState {
  std::atomic<bool> cancelled{false};
  std::shared_ptr<const CancelState> parent;

  bool Cancelled() const {
    for (const CancelState* s = this; s != nullptr; s = s->parent.get()) {
      if (s->cancelled.load(std::memory_order_acquire)) return true;
    }
    return false;
  }
};

}  // namespace internal

/// Read side of a cancellation request. Cheap to copy; a default token
/// can never be cancelled. Tokens are hierarchical: a token derived from a
/// parent source reports cancelled when either its own source or any
/// ancestor cancels.
class CancellationToken {
 public:
  CancellationToken() = default;

  bool CanBeCancelled() const { return state_ != nullptr; }
  bool Cancelled() const { return state_ != nullptr && state_->Cancelled(); }

 private:
  friend class CancellationSource;
  explicit CancellationToken(std::shared_ptr<const internal::CancelState> s)
      : state_(std::move(s)) {}

  std::shared_ptr<const internal::CancelState> state_;
};

/// Write side: owns one cancellation flag and hands out tokens observing
/// it. Constructing a source from a parent token chains the flags, so
/// cancelling a request cancels every sub-operation spawned under it.
/// Cancel() is thread-safe and idempotent.
class CancellationSource {
 public:
  CancellationSource() : state_(std::make_shared<internal::CancelState>()) {}
  explicit CancellationSource(const CancellationToken& parent)
      : CancellationSource() {
    state_->parent = parent.state_;
  }

  void Cancel() { state_->cancelled.store(true, std::memory_order_release); }
  bool Cancelled() const { return state_->Cancelled(); }
  CancellationToken token() const { return CancellationToken(state_); }

 private:
  std::shared_ptr<internal::CancelState> state_;
};

/// Cooperative stop poller combining a deadline and an optional token.
/// Check() is meant for per-tuple hot loops: it reads the clock only every
/// `stride` calls (the token check is a couple of relaxed loads), so
/// polling densely costs almost nothing. Not thread-safe — give each
/// evaluator/shard its own poller.
class StopPoller {
 public:
  StopPoller(const Deadline& deadline, const CancellationToken* cancel,
             unsigned stride = 64)
      : deadline_(deadline),
        cancel_(cancel),
        stride_(stride),
        armed_(!deadline.IsNever() ||
               (cancel != nullptr && cancel->CanBeCancelled())) {}

  /// OK, kCancelled, or kDeadlineExceeded. `what` names the operation in
  /// the error message. One branch when neither bound is armed.
  Status Check(const char* what) {
    if (!armed_) return Status::OK();
    if (cancel_ != nullptr && cancel_->Cancelled()) {
      return Status::Cancelled(std::string(what) + " cancelled");
    }
    if (deadline_.Expired()) {
      return Status::DeadlineExceeded(std::string(what) +
                                      " exceeded its deadline");
    }
    return Status::OK();
  }

  /// Strided Check for tight loops: a full check every `stride` calls.
  Status Poll(const char* what) {
    if (!armed_ || ++calls_ % stride_ != 0) return Status::OK();
    return Check(what);
  }

  bool armed() const { return armed_; }

 private:
  Deadline deadline_;
  const CancellationToken* cancel_;
  unsigned stride_;
  bool armed_;
  unsigned calls_ = 0;
};

}  // namespace resilience
}  // namespace iflex

#endif  // IFLEX_RESILIENCE_DEADLINE_H_
