#include "resilience/failpoint.h"

#include <chrono>
#include <cstdlib>
#include <map>
#include <mutex>
#include <thread>

namespace iflex {
namespace resilience {

std::atomic<int> FailPoints::active_count_{0};

namespace {

struct Point {
  bool error = false;
  int delay_ms = 0;
  uint64_t every = 1;
  std::atomic<uint64_t> hits{0};

  Point() = default;
  Point(const Point& o)
      : error(o.error), delay_ms(o.delay_ms), every(o.every), hits(0) {}
};

// `spec` is one clause list "error|delay:5|every:3"; fills `p`.
Status ParseClauses(std::string_view site, std::string_view spec, Point* p) {
  size_t pos = 0;
  while (pos <= spec.size()) {
    size_t bar = spec.find('|', pos);
    std::string_view clause = spec.substr(
        pos, bar == std::string_view::npos ? spec.size() - pos : bar - pos);
    if (clause == "error") {
      p->error = true;
    } else if (clause.rfind("delay:", 0) == 0) {
      p->delay_ms = std::atoi(std::string(clause.substr(6)).c_str());
      if (p->delay_ms <= 0) {
        return Status::InvalidArgument("fail point " + std::string(site) +
                                       ": bad delay clause '" +
                                       std::string(clause) + "'");
      }
    } else if (clause.rfind("every:", 0) == 0) {
      long k = std::atol(std::string(clause.substr(6)).c_str());
      if (k <= 0) {
        return Status::InvalidArgument("fail point " + std::string(site) +
                                       ": bad every clause '" +
                                       std::string(clause) + "'");
      }
      p->every = static_cast<uint64_t>(k);
    } else {
      return Status::InvalidArgument("fail point " + std::string(site) +
                                     ": unknown clause '" +
                                     std::string(clause) + "'");
    }
    if (bar == std::string_view::npos) break;
    pos = bar + 1;
  }
  if (!p->error && p->delay_ms == 0) {
    return Status::InvalidArgument("fail point " + std::string(site) +
                                   ": no error or delay clause");
  }
  return Status::OK();
}

}  // namespace

struct FailPoints::Impl {
  mutable std::mutex mu;
  std::map<std::string, Point, std::less<>> points;
};

FailPoints::FailPoints() : impl_(new Impl) {
  const char* env = std::getenv("IFLEX_FAILPOINTS");
  if (env != nullptr && env[0] != '\0') {
    // Env errors can't propagate; a bad spec disarms everything rather
    // than silently arming a subset.
    if (!Configure(env).ok()) Clear();
  }
}

FailPoints& FailPoints::Instance() {
  static FailPoints* instance = new FailPoints();
  return *instance;
}

Status FailPoints::Configure(std::string_view spec) {
  std::map<std::string, Point, std::less<>> parsed;
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t comma = spec.find(',', pos);
    std::string_view entry = spec.substr(
        pos, comma == std::string_view::npos ? spec.size() - pos
                                             : comma - pos);
    if (!entry.empty()) {
      size_t eq = entry.find('=');
      if (eq == std::string_view::npos || eq == 0) {
        return Status::InvalidArgument("fail point spec entry '" +
                                       std::string(entry) +
                                       "' is not site=clauses");
      }
      std::string_view site = entry.substr(0, eq);
      Point p;
      IFLEX_RETURN_NOT_OK(ParseClauses(site, entry.substr(eq + 1), &p));
      parsed.emplace(std::string(site), p);
    }
    if (comma == std::string_view::npos) break;
    pos = comma + 1;
  }
  std::lock_guard<std::mutex> lock(impl_->mu);
  impl_->points = std::move(parsed);
  active_count_.store(static_cast<int>(impl_->points.size()),
                      std::memory_order_relaxed);
  return Status::OK();
}

void FailPoints::Clear() {
  std::lock_guard<std::mutex> lock(impl_->mu);
  impl_->points.clear();
  active_count_.store(0, std::memory_order_relaxed);
}

bool FailPoints::Hit(std::string_view site) {
  int delay_ms = 0;
  bool fire_error = false;
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    auto it = impl_->points.find(site);
    if (it == impl_->points.end()) return false;
    Point& p = it->second;
    uint64_t hit = p.hits.fetch_add(1, std::memory_order_relaxed) + 1;
    if (hit % p.every != 0) return false;
    delay_ms = p.delay_ms;
    fire_error = p.error;
  }
  // Sleep outside the lock so a delayed site never serializes other sites.
  if (delay_ms > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
  }
  return fire_error;
}

uint64_t FailPoints::HitCount(std::string_view site) const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  auto it = impl_->points.find(site);
  return it == impl_->points.end()
             ? 0
             : it->second.hits.load(std::memory_order_relaxed);
}

std::vector<std::string> FailPoints::ArmedSites() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  std::vector<std::string> out;
  out.reserve(impl_->points.size());
  for (const auto& [name, p] : impl_->points) {
    (void)p;
    out.push_back(name);
  }
  return out;
}

}  // namespace resilience
}  // namespace iflex
