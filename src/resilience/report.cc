#include "resilience/report.h"

#include "common/strutil.h"

namespace iflex {
namespace resilience {

void ExecReport::Merge(const ExecReport& other) {
  failed_docs.insert(failed_docs.end(), other.failed_docs.begin(),
                     other.failed_docs.end());
  failed_inputs += other.failed_inputs;
  skipped_rules.insert(skipped_rules.end(), other.skipped_rules.begin(),
                       other.skipped_rules.end());
  truncations.insert(truncations.end(), other.truncations.begin(),
                     other.truncations.end());
  degraded = degraded || other.degraded;
  flight_recorder.insert(flight_recorder.end(),
                         other.flight_recorder.begin(),
                         other.flight_recorder.end());
  if (explain.empty()) explain = other.explain;
}

std::string ExecReport::ToString() const {
  if (!degraded) return "ok";
  std::string out = "degraded:";
  if (!failed_docs.empty() || failed_inputs > 0) {
    out += StringPrintf(" %zu doc(s)/input(s) failed",
                        failed_docs.size() + failed_inputs);
  }
  if (!skipped_rules.empty()) {
    out += StringPrintf(" %zu rule(s) skipped", skipped_rules.size());
  }
  if (!truncations.empty()) {
    out += StringPrintf(" %zu truncation(s)", truncations.size());
  }
  return out;
}

}  // namespace resilience
}  // namespace iflex
