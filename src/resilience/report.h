#ifndef IFLEX_RESILIENCE_REPORT_H_
#define IFLEX_RESILIENCE_REPORT_H_

#include <string>
#include <vector>

#include "text/span.h"

namespace iflex {
namespace resilience {

/// What graceful degradation dropped or cut short during one Execute.
/// Superset semantics makes a degraded answer still meaningful: the
/// compact-table result is a valid superset-semantics answer over the
/// surviving inputs (docs/ROBUSTNESS.md), and this report says exactly
/// which inputs did not survive. A report with degraded == false means the
/// result is the same one a fault-free run produces.
struct ExecReport {
  /// Documents dropped by per-document fault isolation (sharded
  /// evaluation); the result contains no tuples derived from them.
  std::vector<DocId> failed_docs;
  /// Seed tuples dropped whose document could not be identified (no doc
  /// provenance in the tuple).
  size_t failed_inputs = 0;
  /// Rules trapped by per-rule fault isolation, as "<head predicate>:
  /// <error>"; their contribution is missing from the result.
  std::vector<std::string> skipped_rules;
  /// Resource-budget truncation events (intermediate-table caps,
  /// enumeration caps), human-readable.
  std::vector<std::string> truncations;
  /// True iff anything above is non-empty — the single flag callers
  /// should branch on.
  bool degraded = false;
  /// Formatted tail of the structured event log (obs::EventLog), dumped
  /// automatically when an execution ends degraded, exceeds its
  /// deadline, is cancelled, or trips a fail point. Diagnostics only:
  /// never counted by EventCount()/empty() and never sets `degraded`.
  std::vector<std::string> flight_recorder;
  /// Rendered attribution table (obs::ExplainReport::ToText) of the last
  /// Execute, filled when the run's cost model was enabled. Diagnostics
  /// only, like flight_recorder.
  std::string explain;

  void Clear() { *this = ExecReport(); }

  bool empty() const {
    return failed_docs.empty() && failed_inputs == 0 &&
           skipped_rules.empty() && truncations.empty();
  }

  /// Total recorded events; comparing counts before/after an operation
  /// tells whether it degraded anything (the executor uses this to keep
  /// degraded tables out of the reuse cache).
  size_t EventCount() const {
    return failed_docs.size() + failed_inputs + skipped_rules.size() +
           truncations.size();
  }

  /// Records and flags in one step.
  void AddFailedDoc(DocId doc) {
    failed_docs.push_back(doc);
    degraded = true;
  }
  void AddFailedInput() {
    ++failed_inputs;
    degraded = true;
  }
  void AddSkippedRule(std::string entry) {
    skipped_rules.push_back(std::move(entry));
    degraded = true;
  }
  void AddTruncation(std::string event) {
    truncations.push_back(std::move(event));
    degraded = true;
  }

  /// Folds a sub-report (a shard's, an iteration's) into this one.
  void Merge(const ExecReport& other);

  /// One-line summary, e.g.
  /// "degraded: 2 doc(s) failed, 1 rule(s) skipped, 1 truncation(s)".
  std::string ToString() const;
};

}  // namespace resilience
}  // namespace iflex

#endif  // IFLEX_RESILIENCE_REPORT_H_
