#ifndef IFLEX_OBS_TRACE_H_
#define IFLEX_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace iflex {
namespace obs {

/// One completed span. Spans are recorded when they end (Chrome "X"
/// complete events), so the buffer is ordered by end time; start/depth
/// allow the exporters to rebuild the tree.
struct TraceEvent {
  std::string name;    // operator/stage id, e.g. "exec.join"
  std::string detail;  // free-form argument, e.g. the predicate name
  uint64_t start_ns = 0;
  uint64_t dur_ns = 0;
  uint32_t tid = 0;
  uint16_t depth = 0;
};

/// Ring-buffered span store. Runtime-off by default: when disabled,
/// TraceSpan construction is a single relaxed load and records nothing
/// (no clock read, no allocation). When the ring fills, the *oldest*
/// events are overwritten — the tail of a run is what a trace viewer
/// needs — and the drop count is reported in the export.
class Tracer {
 public:
  explicit Tracer(size_t capacity = 1 << 16);

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }

  void Record(TraceEvent ev);
  void Clear();

  /// Events in chronological (start time) order.
  std::vector<TraceEvent> Snapshot() const;
  size_t size() const;
  uint64_t dropped() const;

  /// chrome://tracing / Perfetto "traceEvents" JSON.
  std::string ToChromeJson() const;
  /// Writes ToChromeJson() to `path`; returns false on I/O failure.
  bool WriteChromeJson(const std::string& path) const;

  /// Aggregated human-readable tree: per (ancestry path) name, call count
  /// and total wall time, indented by depth.
  std::string SummaryTree() const;

  static uint64_t NowNs();
  static uint32_t CurrentTid();

 private:
  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;
  std::vector<TraceEvent> ring_;
  size_t capacity_;
  size_t next_ = 0;      // ring write cursor
  bool wrapped_ = false;
  uint64_t dropped_ = 0;
};

/// Process-wide tracer. Enabled at startup when the IFLEX_TRACE
/// environment variable is set to anything but "" or "0"; flip it at
/// runtime with set_enabled().
Tracer& DefaultTracer();

/// RAII span: times from construction to End()/destruction and records
/// into the tracer when enabled. `name` must outlive the span (string
/// literals); `detail` is copied at construction only when tracing is
/// enabled, so pass string_views of live strings — never build a
/// temporary string at the call site for it.
class TraceSpan {
 public:
  TraceSpan(Tracer* tracer, const char* name, std::string_view detail = {});
  TraceSpan(Tracer& tracer, const char* name, std::string_view detail = {})
      : TraceSpan(&tracer, name, detail) {}
  ~TraceSpan() { End(); }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Ends and records the span now (idempotent).
  void End();

 private:
  Tracer* tracer_ = nullptr;  // null when tracing was off at construction
  const char* name_ = nullptr;
  std::string detail_;
  uint64_t start_ns_ = 0;
  uint16_t depth_ = 0;
};

/// Resolution helper for the "null means the process default" convention
/// used by ExecOptions / SessionOptions.
inline Tracer* TracerOrDefault(Tracer* t) {
  return t != nullptr ? t : &DefaultTracer();
}

}  // namespace obs
}  // namespace iflex

#endif  // IFLEX_OBS_TRACE_H_
