#include "obs/json.h"

#include <cmath>
#include <cstdio>

namespace iflex {
namespace obs {

void JsonWriter::Escape(std::string_view in, std::string* out) {
  for (char c : in) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
}

JsonWriter& JsonWriter::Number(double v) {
  Prefix();
  if (!std::isfinite(v)) {  // JSON has no inf/nan
    out_ += "null";
    return *this;
  }
  char buf[32];
  // %.17g round-trips doubles; trim to shortest via %g first.
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::Number(uint64_t v) {
  Prefix();
  out_ += std::to_string(v);
  return *this;
}

}  // namespace obs
}  // namespace iflex
