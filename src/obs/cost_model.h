#ifndef IFLEX_OBS_COST_MODEL_H_
#define IFLEX_OBS_COST_MODEL_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <tuple>
#include <vector>

namespace iflex {
namespace obs {

/// Attribution key: who gets charged. During execution `scope` is the
/// rule's head predicate and `op` the operator kind ("join", "from",
/// "constraint", ...); during simulation `scope` is "sim.<strategy>" and
/// `op` names the candidate. `iteration` is the refinement iteration
/// (-1 outside a session; the post-session full evaluation uses the
/// iteration count).
struct CostKey {
  std::string scope;
  std::string op;
  int iteration = -1;

  bool operator<(const CostKey& o) const {
    return std::tie(iteration, scope, op) <
           std::tie(o.iteration, o.scope, o.op);
  }
  bool operator==(const CostKey& o) const {
    return iteration == o.iteration && scope == o.scope && op == o.op;
  }
};

/// What one key was charged. The columns split into two classes
/// (docs/OBSERVABILITY.md): *stable* columns — rows, verify_calls,
/// join_probes — whose per-key sums are thread-count invariant because
/// document shards partition the binding rows, and *unstable* columns —
/// count (one charge per Apply call, so it scales with the shard count),
/// wall_ns, docs (per-shard distinct-document sums double-count a
/// document whose rows straddle a shard boundary), memo_hits
/// (shared-cache interleaving), arena_bytes — which are real telemetry
/// but vary run to run.
struct Cost {
  uint64_t count = 0;         // number of charges folded into this row
  uint64_t wall_ns = 0;       // wall time inside the charged scopes
  uint64_t docs = 0;          // distinct documents touched
  uint64_t rows = 0;          // rows produced
  uint64_t verify_calls = 0;  // Verify evaluations (memo hits included)
  uint64_t memo_hits = 0;     // Verify-memo hits observed locally
  uint64_t join_probes = 0;   // hash-join probe lookups
  uint64_t arena_bytes = 0;   // interner arena growth attributed here

  void Add(const Cost& o) {
    count += o.count;
    wall_ns += o.wall_ns;
    docs += o.docs;
    rows += o.rows;
    verify_calls += o.verify_calls;
    memo_hits += o.memo_hits;
    join_probes += o.join_probes;
    arena_bytes += o.arena_bytes;
  }
};

/// Rendered attribution profile: rows sorted by (iteration, scope, op),
/// plus the grand total and the enclosing span's wall time so the text
/// table can report coverage (attributed wall / span wall).
struct ExplainReport {
  struct Row {
    CostKey key;
    Cost cost;
  };
  std::vector<Row> rows;
  Cost total;
  uint64_t span_ns = 0;

  /// Sorted fixed-width table. With stable_only, only the thread-count
  /// invariant columns are printed (iter/scope/op/rows/verify/probes) —
  /// byte-identical across thread counts for a fixed scenario, which is
  /// what explain_determinism_test pins.
  std::string ToText(bool stable_only = false) const;
  std::string ToJson() const;

  bool empty() const { return rows.empty(); }
};

/// Low-overhead attribution profiler. Disabled (the default), a CostScope
/// costs one relaxed load and never reads the clock; enabled, Charge
/// takes a small mutex — charges happen per operator application (per
/// binding table, not per tuple), so this is off the tuple hot path.
class CostModel {
 public:
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }

  void Charge(const CostKey& key, const Cost& cost);

  /// Accumulates enclosing-span wall time (one Execute, one bench run);
  /// Report(0) uses the accumulated total as the coverage denominator, so
  /// multi-Execute sessions still report attributed/span coverage.
  void AddSpan(uint64_t ns) {
    span_ns_.fetch_add(ns, std::memory_order_relaxed);
  }
  uint64_t span_ns() const {
    return span_ns_.load(std::memory_order_relaxed);
  }

  /// Snapshot of everything charged so far. `span_ns` becomes the
  /// report's coverage denominator; 0 means "use the accumulated
  /// AddSpan total".
  ExplainReport Report(uint64_t span_ns = 0) const;

  /// Column-wise sum of all charges (used to collapse a simulation's
  /// private model into one candidate row of its parent).
  Cost Total() const;

  void Clear();

 private:
  std::atomic<bool> enabled_{false};
  std::atomic<uint64_t> span_ns_{0};
  mutable std::mutex mu_;
  std::map<CostKey, Cost> costs_;
};

/// RAII charge: times wall_ns from construction to End()/destruction and
/// charges the accumulated Cost. Inert (no clock read, no allocation)
/// when the model is null or disabled.
class CostScope {
 public:
  CostScope(CostModel* model, std::string_view scope, const char* op,
            int iteration);
  ~CostScope() { End(); }

  CostScope(const CostScope&) = delete;
  CostScope& operator=(const CostScope&) = delete;

  bool active() const { return model_ != nullptr; }
  /// Accumulator for the non-time columns; only meaningful when active.
  Cost* cost() { return &cost_; }

  /// Charges now (idempotent).
  void End();

 private:
  CostModel* model_ = nullptr;  // null when profiling was off
  CostKey key_;
  Cost cost_;
  uint64_t start_ns_ = 0;
};

/// Process-wide model (disabled until something — the bench harness's
/// --explain-out, the shell — enables it).
CostModel& DefaultCostModel();

/// Resolution helper for the "null means the process default" convention
/// used by ExecOptions / SessionOptions.
inline CostModel* CostModelOrDefault(CostModel* m) {
  return m != nullptr ? m : &DefaultCostModel();
}

}  // namespace obs
}  // namespace iflex

#endif  // IFLEX_OBS_COST_MODEL_H_
