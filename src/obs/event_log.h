#ifndef IFLEX_OBS_EVENT_LOG_H_
#define IFLEX_OBS_EVENT_LOG_H_

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace iflex {
namespace obs {

/// Severity levels, ordered. kOff is a threshold value only — no event
/// carries it.
enum class LogLevel : uint8_t {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
  kOff = 4,
};

/// "debug" / "info" / "warn" / "error" / "off".
const char* LogLevelName(LogLevel level);

/// Case-insensitive parse of the names above (also accepts "warning");
/// anything else returns `fallback`.
LogLevel ParseLogLevel(std::string_view text, LogLevel fallback);

/// One decoded event. `ticket` is the global admission number (0-based,
/// monotone across threads), which orders a Snapshot deterministically
/// even when timestamps tie.
struct LogEvent {
  uint64_t ticket = 0;
  uint64_t ts_ns = 0;  // steady clock (Tracer::NowNs)
  LogLevel level = LogLevel::kInfo;
  uint32_t tid = 0;
  std::string site;     // stable code-site id, e.g. "exec.deadline"
  std::string message;  // free text, truncated to the slot budget
};

/// Leveled, bounded, lock-free event log: the flight recorder.
///
/// The ring keeps the newest `capacity` events that pass the level
/// threshold; older ones are overwritten (and counted in dropped()).
/// Writers never block each other or readers: each slot is a seqlock —
/// a generation word (odd while a write is in flight) guarding a fixed
/// block of relaxed atomic payload words. Site and message strings are
/// truncated into the slot, so Log() does not allocate.
///
/// Snapshot() is safe against concurrent writers: a slot whose
/// generation changed mid-read is simply skipped (it was being
/// overwritten, i.e. its event had already aged out of the window).
/// Clear() is NOT safe against concurrent writers — call it only at
/// quiescent points (between executions), like MetricRegistry::ResetAll.
///
/// An optional JSONL sink streams every admitted event to a file as one
/// JSON object per line; sink I/O takes a mutex, so enable it for
/// debugging sessions, not for hot paths.
class EventLog {
 public:
  static constexpr size_t kDefaultCapacity = 256;
  static constexpr size_t kSiteBytes = 24;     // truncation budgets
  static constexpr size_t kMessageBytes = 96;

  explicit EventLog(size_t capacity = kDefaultCapacity);
  ~EventLog();

  EventLog(const EventLog&) = delete;
  EventLog& operator=(const EventLog&) = delete;

  LogLevel level() const {
    return static_cast<LogLevel>(level_.load(std::memory_order_relaxed));
  }
  void set_level(LogLevel level) {
    level_.store(static_cast<uint8_t>(level), std::memory_order_relaxed);
  }

  /// The cheap call-site gate: one relaxed load. Guard message
  /// construction with it when the message is not a literal.
  bool ShouldLog(LogLevel level) const {
    return static_cast<uint8_t>(level) >=
           level_.load(std::memory_order_relaxed);
  }

  void Log(LogLevel level, std::string_view site, std::string_view message);
  void Debug(std::string_view site, std::string_view message) {
    Log(LogLevel::kDebug, site, message);
  }
  void Info(std::string_view site, std::string_view message) {
    Log(LogLevel::kInfo, site, message);
  }
  void Warn(std::string_view site, std::string_view message) {
    Log(LogLevel::kWarn, site, message);
  }
  void Error(std::string_view site, std::string_view message) {
    Log(LogLevel::kError, site, message);
  }

  /// Surviving events, ticket-ordered (oldest first).
  std::vector<LogEvent> Snapshot() const;

  /// Events admitted since construction / Clear().
  uint64_t total() const {
    return cursor_.load(std::memory_order_relaxed);
  }
  /// Admitted events no longer in the ring (overwritten).
  uint64_t dropped() const {
    uint64_t t = total();
    return t > capacity_ ? t - capacity_ : 0;
  }
  size_t capacity() const { return capacity_; }

  /// Quiescent-point reset (see class comment).
  void Clear();

  /// One JSON object per line, ticket-ordered — same schema as the sink.
  std::string ToJsonl() const;
  /// Writes ToJsonl() to `path`; false on I/O failure.
  bool WriteJsonl(const std::string& path) const;

  /// Human-readable lines for the flight-recorder dump, oldest first:
  /// "[warn ] +12.345ms tid=3 exec.deadline: message". Timestamps are
  /// relative to the oldest surviving event.
  std::vector<std::string> FormatRecent(size_t max_events = 64) const;

  /// Streams every admitted event to `path` as JSONL (append). Empty
  /// path closes the sink.
  bool SetJsonlSink(const std::string& path);

 private:
  // Payload words: [0] ts_ns, [1] level | tid<<8, then the site bytes,
  // then the message bytes.
  static constexpr size_t kSiteWords = kSiteBytes / 8;
  static constexpr size_t kMessageWords = kMessageBytes / 8;
  static constexpr size_t kWordsPerSlot = 2 + kSiteWords + kMessageWords;

  struct Slot {
    std::atomic<uint64_t> seq{0};  // 0 empty; odd mid-write; even done
    std::atomic<uint64_t> words[kWordsPerSlot]{};
  };

  bool DecodeSlot(const Slot& slot, LogEvent* out) const;

  const size_t capacity_;
  std::unique_ptr<Slot[]> slots_;
  std::atomic<uint64_t> cursor_{0};
  std::atomic<uint8_t> level_{static_cast<uint8_t>(LogLevel::kInfo)};

  std::atomic<bool> sink_active_{false};  // fast Log() gate for the sink
  mutable std::mutex sink_mu_;
  std::FILE* sink_ = nullptr;
};

/// Process-wide log. Threshold comes from IFLEX_LOG (debug/info/warn/
/// error/off, default info); IFLEX_LOG_JSONL=<path> opens the JSONL
/// sink at startup.
EventLog& DefaultEventLog();

/// Resolution helper for the "null means the process default" convention
/// used by ExecOptions / SessionOptions.
inline EventLog* EventLogOrDefault(EventLog* log) {
  return log != nullptr ? log : &DefaultEventLog();
}

}  // namespace obs
}  // namespace iflex

/// Compile-time-off debug sites: the call (including message-expression
/// evaluation) vanishes entirely unless the build defines
/// IFLEX_EVENT_LOG_DEBUG=1. Runtime-leveled debug logging additionally
/// requires IFLEX_LOG=debug.
#ifndef IFLEX_EVENT_LOG_DEBUG
#define IFLEX_EVENT_LOG_DEBUG 0
#endif
#if IFLEX_EVENT_LOG_DEBUG
#define IFLEX_ELOG_DEBUG(log, site, msg_expr)                             \
  do {                                                                    \
    ::iflex::obs::EventLog* iflex_elog_l = (log);                         \
    if (iflex_elog_l != nullptr &&                                        \
        iflex_elog_l->ShouldLog(::iflex::obs::LogLevel::kDebug)) {        \
      iflex_elog_l->Log(::iflex::obs::LogLevel::kDebug, (site),           \
                        (msg_expr));                                      \
    }                                                                     \
  } while (0)
#else
#define IFLEX_ELOG_DEBUG(log, site, msg_expr) ((void)0)
#endif

#endif  // IFLEX_OBS_EVENT_LOG_H_
