#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <map>
#include <memory>
#include <thread>

#include "obs/event_log.h"
#include "obs/json.h"
#include "obs/metrics.h"

namespace iflex {
namespace obs {

namespace {

/// Current nesting depth of live spans on this thread.
thread_local uint16_t tls_depth = 0;

}  // namespace

Tracer::Tracer(size_t capacity) : capacity_(std::max<size_t>(1, capacity)) {
  ring_.reserve(std::min<size_t>(capacity_, 4096));
}

void Tracer::Record(TraceEvent ev) {
  bool first_wrap = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (ring_.size() < capacity_) {
      ring_.push_back(std::move(ev));
      return;
    }
    // Full: overwrite the oldest slot (the buffer becomes a proper ring).
    ring_[next_] = std::move(ev);
    next_ = (next_ + 1) % capacity_;
    first_wrap = !wrapped_;
    wrapped_ = true;
    ++dropped_;
  }
  // Overflow is also surfaced outside the Chrome export: a default-
  // registry counter (every drop) and a single event-log warning per
  // wrap episode (Clear() re-arms it). Both happen outside mu_ so the
  // registry / event-log locks never nest inside the tracer's.
  static Counter* drop_counter =
      DefaultMetrics().counter("obs.trace_dropped");
  drop_counter->Add();
  if (first_wrap) {
    DefaultEventLog().Warn("obs.trace",
                           "trace ring wrapped; oldest spans dropped");
  }
}

void Tracer::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  next_ = 0;
  wrapped_ = false;
  dropped_ = 0;
}

std::vector<TraceEvent> Tracer::Snapshot() const {
  std::vector<TraceEvent> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!wrapped_) {
      out = ring_;
    } else {
      out.reserve(ring_.size());
      for (size_t i = 0; i < ring_.size(); ++i) {
        out.push_back(ring_[(next_ + i) % ring_.size()]);
      }
    }
  }
  // In-place sort with a total order (depth/name tie-breaks) so the result
  // is deterministic without stable_sort's temporary-buffer allocation.
  std::sort(out.begin(), out.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.tid != b.tid) return a.tid < b.tid;
              if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
              if (a.dur_ns != b.dur_ns) {
                return a.dur_ns > b.dur_ns;  // parents before children
              }
              if (a.depth != b.depth) return a.depth < b.depth;
              return a.name < b.name;
            });
  return out;
}

size_t Tracer::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_.size();
}

uint64_t Tracer::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

std::string Tracer::ToChromeJson() const {
  std::vector<TraceEvent> events = Snapshot();
  JsonWriter w;
  w.BeginObject();
  w.Key("traceEvents").BeginArray();
  for (const TraceEvent& ev : events) {
    w.BeginObject();
    w.Key("name").String(ev.name);
    w.Key("cat").String("iflex");
    w.Key("ph").String("X");
    w.Key("ts").Number(static_cast<double>(ev.start_ns) / 1000.0);
    w.Key("dur").Number(static_cast<double>(ev.dur_ns) / 1000.0);
    w.Key("pid").Number(uint64_t{1});
    w.Key("tid").Number(static_cast<uint64_t>(ev.tid));
    if (!ev.detail.empty()) {
      w.Key("args").BeginObject();
      w.Key("detail").String(ev.detail);
      w.EndObject();
    }
    w.EndObject();
  }
  w.EndArray();
  w.Key("displayTimeUnit").String("ms");
  w.Key("otherData").BeginObject();
  w.Key("dropped_events").Number(dropped());
  w.EndObject();
  w.EndObject();
  return w.Release();
}

bool Tracer::WriteChromeJson(const std::string& path) const {
  std::string json = ToChromeJson();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  size_t written = std::fwrite(json.data(), 1, json.size(), f);
  bool ok = written == json.size();
  ok = std::fclose(f) == 0 && ok;
  return ok;
}

namespace {

struct SummaryNode {
  size_t count = 0;
  uint64_t total_ns = 0;
  std::map<std::string, std::unique_ptr<SummaryNode>> children;
};

void PrintSummary(const SummaryNode& node, int depth, std::string* out) {
  // Children sorted by total time, descending.
  std::vector<std::pair<const std::string*, const SummaryNode*>> kids;
  for (const auto& [name, child] : node.children) {
    kids.emplace_back(&name, child.get());
  }
  std::sort(kids.begin(), kids.end(), [](const auto& a, const auto& b) {
    return a.second->total_ns > b.second->total_ns;
  });
  for (const auto& [name, child] : kids) {
    char buf[192];
    std::snprintf(buf, sizeof(buf), "%*s%-*s %8zux %12.3f ms\n", depth * 2,
                  "", 36 - depth * 2, name->c_str(), child->count,
                  static_cast<double>(child->total_ns) / 1e6);
    *out += buf;
    PrintSummary(*child, depth + 1, out);
  }
}

}  // namespace

std::string Tracer::SummaryTree() const {
  // Rebuild span nesting per thread from start-time order + containment
  // (a child starts and ends inside its parent), then aggregate by the
  // name path so repeated operators fold into one line.
  std::vector<TraceEvent> events = Snapshot();
  SummaryNode root;
  struct Open {
    uint64_t end_ns;
    SummaryNode* node;
  };
  std::vector<Open> stack;
  uint32_t cur_tid = 0;
  for (const TraceEvent& ev : events) {
    if (ev.tid != cur_tid) {
      stack.clear();
      cur_tid = ev.tid;
    }
    while (!stack.empty() && ev.start_ns >= stack.back().end_ns) {
      stack.pop_back();
    }
    SummaryNode* parent = stack.empty() ? &root : stack.back().node;
    std::unique_ptr<SummaryNode>& slot = parent->children[ev.name];
    if (slot == nullptr) slot = std::make_unique<SummaryNode>();
    slot->count += 1;
    slot->total_ns += ev.dur_ns;
    stack.push_back(Open{ev.start_ns + ev.dur_ns, slot.get()});
  }
  std::string out;
  PrintSummary(root, 0, &out);
  if (uint64_t d = dropped(); d > 0) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "(+%llu dropped events)\n",
                  static_cast<unsigned long long>(d));
    out += buf;
  }
  return out;
}

uint64_t Tracer::NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

uint32_t Tracer::CurrentTid() {
  return static_cast<uint32_t>(
      std::hash<std::thread::id>{}(std::this_thread::get_id()));
}

Tracer& DefaultTracer() {
  static Tracer* tracer = [] {
    auto* t = new Tracer();
    const char* env = std::getenv("IFLEX_TRACE");
    if (env != nullptr && env[0] != '\0' && std::strcmp(env, "0") != 0) {
      t->set_enabled(true);
    }
    return t;
  }();
  return *tracer;
}

TraceSpan::TraceSpan(Tracer* tracer, const char* name,
                     std::string_view detail) {
  if (tracer == nullptr || !tracer->enabled()) return;  // zero-cost path
  tracer_ = tracer;
  name_ = name;
  if (!detail.empty()) detail_.assign(detail.data(), detail.size());
  depth_ = tls_depth++;
  start_ns_ = Tracer::NowNs();
}

void TraceSpan::End() {
  if (tracer_ == nullptr) return;
  TraceEvent ev;
  ev.name = name_;
  ev.detail = std::move(detail_);
  ev.start_ns = start_ns_;
  ev.dur_ns = Tracer::NowNs() - start_ns_;
  ev.tid = Tracer::CurrentTid();
  ev.depth = depth_;
  --tls_depth;
  tracer_->Record(std::move(ev));
  tracer_ = nullptr;
}

}  // namespace obs
}  // namespace iflex
