#ifndef IFLEX_OBS_JSON_H_
#define IFLEX_OBS_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace iflex {
namespace obs {

/// Minimal streaming JSON writer used by the trace / metrics / bench
/// exporters. Comma placement is automatic; keys and values must be
/// alternated correctly by the caller (objects) — there is no validation
/// beyond a debug-friendly structure stack.
class JsonWriter {
 public:
  JsonWriter& BeginObject() {
    Prefix();
    out_.push_back('{');
    stack_.push_back(State::kObjectFirst);
    return *this;
  }
  JsonWriter& EndObject() {
    stack_.pop_back();
    out_.push_back('}');
    return *this;
  }
  JsonWriter& BeginArray() {
    Prefix();
    out_.push_back('[');
    stack_.push_back(State::kArrayFirst);
    return *this;
  }
  JsonWriter& EndArray() {
    stack_.pop_back();
    out_.push_back(']');
    return *this;
  }
  /// Object key; the next value call is its value.
  JsonWriter& Key(std::string_view k) {
    Prefix();
    AppendQuoted(k);
    out_.push_back(':');
    pending_value_ = true;
    return *this;
  }
  JsonWriter& String(std::string_view v) {
    Prefix();
    AppendQuoted(v);
    return *this;
  }
  JsonWriter& Number(double v);
  JsonWriter& Number(uint64_t v);
  JsonWriter& Number(int v) { return Number(static_cast<uint64_t>(v < 0 ? 0 : v)); }
  JsonWriter& Bool(bool v) {
    Prefix();
    out_ += v ? "true" : "false";
    return *this;
  }
  JsonWriter& Null() {
    Prefix();
    out_ += "null";
    return *this;
  }

  const std::string& str() const { return out_; }
  std::string Release() { return std::move(out_); }

  /// JSON string escaping (quotes not included).
  static void Escape(std::string_view in, std::string* out);

 private:
  enum class State : uint8_t { kObjectFirst, kObject, kArrayFirst, kArray };

  void Prefix() {
    if (pending_value_) {  // value directly after a Key(): no comma
      pending_value_ = false;
      return;
    }
    if (stack_.empty()) return;
    State& s = stack_.back();
    if (s == State::kObjectFirst) {
      s = State::kObject;
    } else if (s == State::kArrayFirst) {
      s = State::kArray;
    } else {
      out_.push_back(',');
    }
  }

  void AppendQuoted(std::string_view v) {
    out_.push_back('"');
    Escape(v, &out_);
    out_.push_back('"');
  }

  std::string out_;
  std::vector<State> stack_;
  bool pending_value_ = false;
};

}  // namespace obs
}  // namespace iflex

#endif  // IFLEX_OBS_JSON_H_
