#include "obs/openmetrics.h"

#include <algorithm>
#include <cstdio>
#include <vector>

namespace iflex {
namespace obs {

namespace {

// Fixed log-scale bounds: wide enough for both second-scale timings and
// count-scale histograms; identical for every run so scrapes line up.
constexpr double kBucketBounds[] = {1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1,
                                    1.0,  1e1,  1e2,  1e3,  1e4,  1e5,
                                    1e6};

std::string SanitizeName(std::string_view name) {
  std::string out = "iflex_";
  for (char c : name) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  return out;
}

void AppendEscapedLabelValue(std::string_view v, std::string* out) {
  for (char c : v) {
    switch (c) {
      case '\\':
        *out += "\\\\";
        break;
      case '"':
        *out += "\\\"";
        break;
      case '\n':
        *out += "\\n";
        break;
      default:
        out->push_back(c);
    }
  }
}

// Renders {k="v",...}; empty when there are no labels. `extra` appends
// one more pair (the histogram `le` label) without copying the map.
std::string RenderLabels(const std::map<std::string, std::string>& labels,
                         std::string_view extra_key = {},
                         std::string_view extra_value = {}) {
  if (labels.empty() && extra_key.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out.push_back(',');
    first = false;
    out += k;
    out += "=\"";
    AppendEscapedLabelValue(v, &out);
    out.push_back('"');
  }
  if (!extra_key.empty()) {
    if (!first) out.push_back(',');
    out += extra_key;
    out += "=\"";
    AppendEscapedLabelValue(extra_value, &out);
    out.push_back('"');
  }
  out.push_back('}');
  return out;
}

void AppendDouble(double v, std::string* out) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  *out += buf;
}

}  // namespace

std::string ToOpenMetrics(const MetricRegistry& registry,
                          const OpenMetricsOptions& options) {
  MetricRegistry::Snapshot snap = registry.Snap();
  const std::string labels = RenderLabels(options.labels);
  std::string out;
  char buf[64];

  for (const auto& [name, value] : snap.counters) {
    std::string family = SanitizeName(name);
    out += "# TYPE " + family + " counter\n";
    out += family + "_total" + labels + " ";
    std::snprintf(buf, sizeof(buf), "%llu\n",
                  static_cast<unsigned long long>(value));
    out += buf;
  }
  for (const auto& [name, value] : snap.gauges) {
    std::string family = SanitizeName(name);
    out += "# TYPE " + family + " gauge\n";
    out += family + labels + " ";
    AppendDouble(value, &out);
    out.push_back('\n');
  }
  for (const auto& [name, data] : snap.histograms) {
    std::string family = SanitizeName(name);
    out += "# TYPE " + family + " histogram\n";
    // Cumulative finite buckets come from the retained reservoir; the
    // +Inf bucket is the exact count, so observations past the reservoir
    // surface there (still monotone: retained <= exact count).
    std::vector<double> samples = data.samples;
    std::sort(samples.begin(), samples.end());
    for (double bound : kBucketBounds) {
      size_t cumulative =
          std::upper_bound(samples.begin(), samples.end(), bound) -
          samples.begin();
      std::snprintf(buf, sizeof(buf), "%.0e", bound);
      out += family + "_bucket" + RenderLabels(options.labels, "le", buf);
      std::snprintf(buf, sizeof(buf), " %zu\n", cumulative);
      out += buf;
    }
    out += family + "_bucket" + RenderLabels(options.labels, "le", "+Inf");
    std::snprintf(buf, sizeof(buf), " %zu\n", data.count);
    out += buf;
    out += family + "_sum" + labels + " ";
    AppendDouble(data.sum, &out);
    out.push_back('\n');
    out += family + "_count" + labels + " ";
    std::snprintf(buf, sizeof(buf), "%zu\n", data.count);
    out += buf;
  }
  out += "# EOF\n";
  return out;
}

bool WriteOpenMetrics(const MetricRegistry& registry, const std::string& path,
                      const OpenMetricsOptions& options) {
  std::string body = ToOpenMetrics(registry, options);
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  size_t written = std::fwrite(body.data(), 1, body.size(), f);
  bool ok = (written == body.size());
  ok = (std::fclose(f) == 0) && ok;
  return ok;
}

}  // namespace obs
}  // namespace iflex
