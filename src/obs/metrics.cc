#include "obs/metrics.h"

#include <cstdio>

#include "obs/json.h"

namespace iflex {
namespace obs {

namespace {

template <typename Map, typename Make>
auto* GetOrCreate(std::mutex& mu, Map& map, std::string_view name,
                  Make make) {
  std::lock_guard<std::mutex> lock(mu);
  auto it = map.find(name);
  if (it == map.end()) {
    it = map.emplace(std::string(name), make()).first;
  }
  return it->second.get();
}

}  // namespace

Counter* MetricRegistry::counter(std::string_view name) {
  return GetOrCreate(mu_, counters_, name,
                     [] { return std::make_unique<Counter>(); });
}

Gauge* MetricRegistry::gauge(std::string_view name) {
  return GetOrCreate(mu_, gauges_, name,
                     [] { return std::make_unique<Gauge>(); });
}

Histogram* MetricRegistry::histogram(std::string_view name) {
  return GetOrCreate(mu_, histograms_, name,
                     [] { return std::make_unique<Histogram>(); });
}

void Histogram::MergeFrom(const Histogram& other) {
  if (&other == this) return;
  // Copy the source under its own lock first, then fold under ours:
  // taking both locks at once would risk an ordering cycle.
  std::vector<double> samples = other.Samples();
  size_t count;
  double sum, min, max;
  {
    std::lock_guard<std::mutex> lock(other.mu_);
    count = other.count_;
    sum = other.sum_;
    min = other.min_;
    max = other.max_;
  }
  MergeAggregates(count, sum, min, max, samples);
}

void Histogram::MergeAggregates(size_t count, double sum, double min,
                                double max,
                                const std::vector<double>& samples) {
  if (count == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  min_ = count_ == 0 ? min : std::min(min_, min);
  max_ = count_ == 0 ? max : std::max(max_, max);
  count_ += count;
  sum_ += sum;
  for (double v : samples) {
    if (samples_.size() >= max_samples_) break;
    samples_.push_back(v);
    sorted_ = false;
  }
}

MetricRegistry::Snapshot MetricRegistry::Snap() const {
  Snapshot snap;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, c] : counters_) snap.counters[name] = c->value();
  for (const auto& [name, g] : gauges_) snap.gauges[name] = g->value();
  for (const auto& [name, h] : histograms_) {
    Snapshot::HistogramData& data = snap.histograms[name];
    data.count = h->count();
    data.sum = h->sum();
    data.min = h->min();
    data.max = h->max();
    data.samples = h->Samples();
  }
  return snap;
}

void MetricRegistry::MergeInto(MetricRegistry* dst,
                               std::string_view prefix) const {
  if (dst == nullptr || dst == this) return;
  // Snapshot first so the source lock is released before touching dst.
  Snapshot snap = Snap();
  std::string name;
  for (const auto& [key, value] : snap.counters) {
    name.assign(prefix).append(key);
    dst->counter(name)->Add(value);
  }
  for (const auto& [key, value] : snap.gauges) {
    name.assign(prefix).append(key);
    dst->gauge(name)->Add(value);
  }
  for (const auto& [key, data] : snap.histograms) {
    if (data.count == 0) continue;
    name.assign(prefix).append(key);
    dst->histogram(name)->MergeAggregates(data.count, data.sum, data.min,
                                          data.max, data.samples);
  }
}

void MetricRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
}

void MetricRegistry::WriteJson(JsonWriter* w) const {
  std::lock_guard<std::mutex> lock(mu_);
  w->BeginObject();
  w->Key("counters").BeginObject();
  for (const auto& [name, c] : counters_) {
    w->Key(name).Number(c->value());
  }
  w->EndObject();
  w->Key("gauges").BeginObject();
  for (const auto& [name, g] : gauges_) {
    w->Key(name).Number(g->value());
  }
  w->EndObject();
  w->Key("histograms").BeginObject();
  for (const auto& [name, h] : histograms_) {
    w->Key(name).BeginObject();
    w->Key("count").Number(static_cast<uint64_t>(h->count()));
    w->Key("sum").Number(h->sum());
    w->Key("min").Number(h->min());
    w->Key("max").Number(h->max());
    w->Key("p50").Number(h->Percentile(0.5));
    w->Key("p90").Number(h->Percentile(0.9));
    w->Key("p99").Number(h->Percentile(0.99));
    w->EndObject();
  }
  w->EndObject();
  w->EndObject();
}

std::string MetricRegistry::ToJson() const {
  JsonWriter w;
  WriteJson(&w);
  return w.Release();
}

std::string MetricRegistry::ToText() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  char buf[160];
  for (const auto& [name, c] : counters_) {
    std::snprintf(buf, sizeof(buf), "%-40s %llu\n", name.c_str(),
                  static_cast<unsigned long long>(c->value()));
    out += buf;
  }
  for (const auto& [name, g] : gauges_) {
    std::snprintf(buf, sizeof(buf), "%-40s %.6g\n", name.c_str(), g->value());
    out += buf;
  }
  for (const auto& [name, h] : histograms_) {
    std::snprintf(
        buf, sizeof(buf),
        "%-40s count=%zu mean=%.6g p50=%.6g p90=%.6g p99=%.6g max=%.6g\n",
        name.c_str(), h->count(), h->mean(), h->Percentile(0.5),
        h->Percentile(0.9), h->Percentile(0.99), h->max());
    out += buf;
  }
  return out;
}

MetricRegistry& DefaultMetrics() {
  static MetricRegistry* registry = new MetricRegistry();
  return *registry;
}

}  // namespace obs
}  // namespace iflex
