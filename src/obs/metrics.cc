#include "obs/metrics.h"

#include <cstdio>

#include "obs/json.h"

namespace iflex {
namespace obs {

namespace {

template <typename Map, typename Make>
auto* GetOrCreate(std::mutex& mu, Map& map, std::string_view name,
                  Make make) {
  std::lock_guard<std::mutex> lock(mu);
  auto it = map.find(name);
  if (it == map.end()) {
    it = map.emplace(std::string(name), make()).first;
  }
  return it->second.get();
}

}  // namespace

Counter* MetricRegistry::counter(std::string_view name) {
  return GetOrCreate(mu_, counters_, name,
                     [] { return std::make_unique<Counter>(); });
}

Gauge* MetricRegistry::gauge(std::string_view name) {
  return GetOrCreate(mu_, gauges_, name,
                     [] { return std::make_unique<Gauge>(); });
}

Histogram* MetricRegistry::histogram(std::string_view name) {
  return GetOrCreate(mu_, histograms_, name,
                     [] { return std::make_unique<Histogram>(); });
}

void MetricRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
}

void MetricRegistry::WriteJson(JsonWriter* w) const {
  std::lock_guard<std::mutex> lock(mu_);
  w->BeginObject();
  w->Key("counters").BeginObject();
  for (const auto& [name, c] : counters_) {
    w->Key(name).Number(c->value());
  }
  w->EndObject();
  w->Key("gauges").BeginObject();
  for (const auto& [name, g] : gauges_) {
    w->Key(name).Number(g->value());
  }
  w->EndObject();
  w->Key("histograms").BeginObject();
  for (const auto& [name, h] : histograms_) {
    w->Key(name).BeginObject();
    w->Key("count").Number(static_cast<uint64_t>(h->count()));
    w->Key("sum").Number(h->sum());
    w->Key("min").Number(h->min());
    w->Key("max").Number(h->max());
    w->Key("p50").Number(h->Percentile(0.5));
    w->Key("p90").Number(h->Percentile(0.9));
    w->Key("p99").Number(h->Percentile(0.99));
    w->EndObject();
  }
  w->EndObject();
  w->EndObject();
}

std::string MetricRegistry::ToJson() const {
  JsonWriter w;
  WriteJson(&w);
  return w.Release();
}

std::string MetricRegistry::ToText() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  char buf[160];
  for (const auto& [name, c] : counters_) {
    std::snprintf(buf, sizeof(buf), "%-40s %llu\n", name.c_str(),
                  static_cast<unsigned long long>(c->value()));
    out += buf;
  }
  for (const auto& [name, g] : gauges_) {
    std::snprintf(buf, sizeof(buf), "%-40s %.6g\n", name.c_str(), g->value());
    out += buf;
  }
  for (const auto& [name, h] : histograms_) {
    std::snprintf(buf, sizeof(buf),
                  "%-40s count=%zu mean=%.6g p50=%.6g p99=%.6g max=%.6g\n",
                  name.c_str(), h->count(), h->mean(), h->Percentile(0.5),
                  h->Percentile(0.99), h->max());
    out += buf;
  }
  return out;
}

MetricRegistry& DefaultMetrics() {
  static MetricRegistry* registry = new MetricRegistry();
  return *registry;
}

}  // namespace obs
}  // namespace iflex
