#include "obs/cost_model.h"

#include <algorithm>
#include <cstdio>

#include "obs/json.h"
#include "obs/trace.h"

namespace iflex {
namespace obs {

void CostModel::Charge(const CostKey& key, const Cost& cost) {
  std::lock_guard<std::mutex> lock(mu_);
  costs_[key].Add(cost);
}

ExplainReport CostModel::Report(uint64_t span_ns) const {
  ExplainReport report;
  report.span_ns = span_ns != 0 ? span_ns : this->span_ns();
  std::lock_guard<std::mutex> lock(mu_);
  report.rows.reserve(costs_.size());
  for (const auto& [key, cost] : costs_) {
    report.rows.push_back({key, cost});
    report.total.Add(cost);
  }
  return report;  // map iteration order is already the sort order
}

Cost CostModel::Total() const {
  Cost total;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [key, cost] : costs_) total.Add(cost);
  return total;
}

void CostModel::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  costs_.clear();
  span_ns_.store(0, std::memory_order_relaxed);
}

CostScope::CostScope(CostModel* model, std::string_view scope,
                     const char* op, int iteration) {
  if (model == nullptr || !model->enabled()) return;
  model_ = model;
  key_.scope = std::string(scope);
  key_.op = op;
  key_.iteration = iteration;
  cost_.count = 1;
  start_ns_ = Tracer::NowNs();
}

void CostScope::End() {
  if (model_ == nullptr) return;
  cost_.wall_ns += Tracer::NowNs() - start_ns_;
  model_->Charge(key_, cost_);
  model_ = nullptr;
}

namespace {

void AppendCostColumns(const Cost& c, bool stable_only, uint64_t span_ns,
                       std::string* out) {
  char buf[192];
  if (stable_only) {
    std::snprintf(buf, sizeof(buf), " %10llu %10llu %10llu",
                  static_cast<unsigned long long>(c.rows),
                  static_cast<unsigned long long>(c.verify_calls),
                  static_cast<unsigned long long>(c.join_probes));
    *out += buf;
    return;
  }
  double wall_ms = static_cast<double>(c.wall_ns) / 1e6;
  double pct = span_ns == 0
                   ? 0.0
                   : 100.0 * static_cast<double>(c.wall_ns) /
                         static_cast<double>(span_ns);
  std::snprintf(buf, sizeof(buf),
                " %8llu %10.3f %6.1f %10llu %10llu %10llu %9llu %10llu"
                " %10llu",
                static_cast<unsigned long long>(c.count), wall_ms, pct,
                static_cast<unsigned long long>(c.docs),
                static_cast<unsigned long long>(c.rows),
                static_cast<unsigned long long>(c.verify_calls),
                static_cast<unsigned long long>(c.memo_hits),
                static_cast<unsigned long long>(c.join_probes),
                static_cast<unsigned long long>(c.arena_bytes));
  *out += buf;
}

void AppendKeyColumns(const CostKey& key, std::string* out) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "%4d %-24.24s %-16.16s", key.iteration,
                key.scope.c_str(), key.op.c_str());
  *out += buf;
}

}  // namespace

std::string ExplainReport::ToText(bool stable_only) const {
  std::string out;
  if (stable_only) {
    out +=
        "iter scope                    op              "
        "       rows     verify     probes\n";
  } else {
    out +=
        "iter scope                    op              "
        "    count    wall_ms    pct       docs       rows     verify"
        "  memohits     probes      arena\n";
  }
  for (const Row& row : rows) {
    AppendKeyColumns(row.key, &out);
    AppendCostColumns(row.cost, stable_only, span_ns, &out);
    out.push_back('\n');
  }
  out += "     ";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%-24s %-16s", "total", "");
  out += buf;
  AppendCostColumns(total, stable_only, span_ns, &out);
  out.push_back('\n');
  if (!stable_only && span_ns != 0) {
    double span_ms = static_cast<double>(span_ns) / 1e6;
    double attributed_ms = static_cast<double>(total.wall_ns) / 1e6;
    double coverage =
        span_ns == 0 ? 0.0
                     : 100.0 * static_cast<double>(total.wall_ns) /
                           static_cast<double>(span_ns);
    std::snprintf(buf, sizeof(buf),
                  "span_ms %.3f attributed_ms %.3f coverage %.1f%%\n",
                  span_ms, attributed_ms, coverage);
    out += buf;
  }
  return out;
}

namespace {

void WriteCostJson(const Cost& c, JsonWriter* w) {
  w->BeginObject();
  w->Key("count").Number(c.count);
  w->Key("wall_ns").Number(c.wall_ns);
  w->Key("docs").Number(c.docs);
  w->Key("rows").Number(c.rows);
  w->Key("verify_calls").Number(c.verify_calls);
  w->Key("memo_hits").Number(c.memo_hits);
  w->Key("join_probes").Number(c.join_probes);
  w->Key("arena_bytes").Number(c.arena_bytes);
  w->EndObject();
}

}  // namespace

std::string ExplainReport::ToJson() const {
  JsonWriter w;
  w.BeginObject();
  w.Key("rows").BeginArray();
  for (const Row& row : rows) {
    w.BeginObject();
    w.Key("iteration").Number(static_cast<double>(row.key.iteration));
    w.Key("scope").String(row.key.scope);
    w.Key("op").String(row.key.op);
    w.Key("cost");
    WriteCostJson(row.cost, &w);
    w.EndObject();
  }
  w.EndArray();
  w.Key("total");
  WriteCostJson(total, &w);
  w.Key("span_ns").Number(span_ns);
  w.EndObject();
  return w.Release();
}

CostModel& DefaultCostModel() {
  static CostModel* model = new CostModel();
  return *model;
}

}  // namespace obs
}  // namespace iflex
