#ifndef IFLEX_OBS_METRICS_H_
#define IFLEX_OBS_METRICS_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace iflex {
namespace obs {

class JsonWriter;

/// Monotonic (until Reset) event counter. Hot-path updates are relaxed
/// atomics: several executors running on pool threads routinely share one
/// registry (docs/OBSERVABILITY.md recommends exactly that for benches),
/// so plain stores would be a data race. Relaxed ordering is enough — the
/// totals are read after a join, never used for synchronization.
class Counter {
 public:
  void Add(uint64_t d = 1) { value_.fetch_add(d, std::memory_order_relaxed); }
  void Set(uint64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-value-wins instantaneous measurement (result sizes, process-wide
/// assignment counts, fractions). Atomic for the same reason as Counter.
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  void Add(double d) { value_.fetch_add(d, std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0};
};

/// Sample distribution with exact percentiles over a bounded reservoir
/// (the first `max_samples` observations; count/sum/min/max stay exact
/// beyond that). Record and the accessors take a small mutex — histograms
/// are off the per-tuple hot path (per-iteration / per-run timings), and
/// the lazy re-sort in Percentile needs the exclusion anyway.
class Histogram {
 public:
  explicit Histogram(size_t max_samples = 1 << 16)
      : max_samples_(max_samples) {}

  void Record(double v) {
    std::lock_guard<std::mutex> lock(mu_);
    ++count_;
    sum_ += v;
    min_ = count_ == 1 ? v : std::min(min_, v);
    max_ = count_ == 1 ? v : std::max(max_, v);
    if (samples_.size() < max_samples_) {
      samples_.push_back(v);
      sorted_ = false;
    }
  }

  size_t count() const {
    std::lock_guard<std::mutex> lock(mu_);
    return count_;
  }
  double sum() const {
    std::lock_guard<std::mutex> lock(mu_);
    return sum_;
  }
  double mean() const {
    std::lock_guard<std::mutex> lock(mu_);
    return count_ == 0 ? 0 : sum_ / static_cast<double>(count_);
  }
  double min() const {
    std::lock_guard<std::mutex> lock(mu_);
    return count_ == 0 ? 0 : min_;
  }
  double max() const {
    std::lock_guard<std::mutex> lock(mu_);
    return count_ == 0 ? 0 : max_;
  }

  /// Exact percentile (linear interpolation) over the retained samples;
  /// q in [0, 1].
  double Percentile(double q) const {
    std::lock_guard<std::mutex> lock(mu_);
    if (samples_.empty()) return 0;
    if (!sorted_) {
      std::sort(samples_.begin(), samples_.end());
      sorted_ = true;
    }
    q = std::min(1.0, std::max(0.0, q));
    double idx = q * static_cast<double>(samples_.size() - 1);
    size_t lo = static_cast<size_t>(idx);
    size_t hi = std::min(lo + 1, samples_.size() - 1);
    double frac = idx - static_cast<double>(lo);
    return samples_[lo] * (1 - frac) + samples_[hi] * frac;
  }

  void Reset() {
    std::lock_guard<std::mutex> lock(mu_);
    samples_.clear();
    sorted_ = false;
    count_ = 0;
    sum_ = 0;
    min_ = 0;
    max_ = 0;
  }

  /// Copy of the retained reservoir (unsorted order not guaranteed);
  /// the OpenMetrics exporter derives bucket counts from it.
  std::vector<double> Samples() const {
    std::lock_guard<std::mutex> lock(mu_);
    return samples_;
  }

  /// Folds another histogram in: exact count/sum/min/max aggregation,
  /// retained samples appended up to this reservoir's capacity.
  void MergeFrom(const Histogram& other);

  /// Same fold from raw pieces (a Snapshot's HistogramData).
  void MergeAggregates(size_t count, double sum, double min, double max,
                       const std::vector<double>& samples);

 private:
  mutable std::mutex mu_;
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
  size_t max_samples_;
  size_t count_ = 0;
  double sum_ = 0;
  double min_ = 0;
  double max_ = 0;
};

/// Named metric store. Get-or-create is synchronized and returns stable
/// pointers, so hot paths cache the pointer once and update lock-free.
/// Names are dotted paths ("exec.join_pairs"); export order is sorted.
class MetricRegistry {
 public:
  Counter* counter(std::string_view name);
  Gauge* gauge(std::string_view name);
  Histogram* histogram(std::string_view name);

  /// Zeroes every registered metric (pointers stay valid).
  void ResetAll();

  /// Writes {"counters":{...},"gauges":{...},"histograms":{...}} as one
  /// JSON object value into `w`.
  void WriteJson(JsonWriter* w) const;
  std::string ToJson() const;

  /// Human-readable "name value" lines, sorted by name.
  std::string ToText() const;

  /// Point-in-time copy for exporters that need the raw values (the
  /// OpenMetrics writer) without holding the registry lock while
  /// formatting.
  struct Snapshot {
    struct HistogramData {
      size_t count = 0;
      double sum = 0;
      double min = 0;
      double max = 0;
      std::vector<double> samples;  // retained reservoir
    };
    std::map<std::string, uint64_t> counters;
    std::map<std::string, double> gauges;
    std::map<std::string, HistogramData> histograms;
  };
  Snapshot Snap() const;

  /// Folds every metric into `dst` under `<prefix><name>`: counters and
  /// gauges add their values, histograms MergeFrom. Used to surface
  /// simulation-private registries in the parent as "sim.*" after a
  /// simulation ends. Safe for concurrent callers on `dst`; a no-op when
  /// dst == this.
  void MergeInto(MetricRegistry* dst, std::string_view prefix) const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

/// Process-wide registry: instrumentation that has no per-run registry
/// wired through (datagen, loaders, bench harnesses) lands here.
MetricRegistry& DefaultMetrics();

}  // namespace obs
}  // namespace iflex

#endif  // IFLEX_OBS_METRICS_H_
