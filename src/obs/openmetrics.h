#ifndef IFLEX_OBS_OPENMETRICS_H_
#define IFLEX_OBS_OPENMETRICS_H_

#include <map>
#include <string>

#include "obs/metrics.h"

namespace iflex {
namespace obs {

/// Shared labels attached to every exported sample. Keys must already be
/// valid OpenMetrics label names ([a-zA-Z_][a-zA-Z0-9_]*); values are
/// escaped. The bench harness fills run_id / threads / scenario.
struct OpenMetricsOptions {
  std::map<std::string, std::string> labels;
};

/// Renders the registry in the OpenMetrics / Prometheus text exposition
/// format (docs/OBSERVABILITY.md):
///   - metric names are sanitized ('.' and other non-name chars become
///     '_') and prefixed "iflex_";
///   - counters export as `<name>_total` with `# TYPE <name> counter`;
///   - gauges export verbatim;
///   - histograms export cumulative `_bucket{le=...}` series over fixed
///     log-scale bounds (derived from the retained reservoir; the +Inf
///     bucket always equals the exact count), plus `_sum` and `_count`;
///   - the exposition ends with `# EOF`.
std::string ToOpenMetrics(const MetricRegistry& registry,
                          const OpenMetricsOptions& options = {});

/// Writes ToOpenMetrics() to `path`; false on I/O failure.
bool WriteOpenMetrics(const MetricRegistry& registry, const std::string& path,
                      const OpenMetricsOptions& options = {});

}  // namespace obs
}  // namespace iflex

#endif  // IFLEX_OBS_OPENMETRICS_H_
