#include "obs/event_log.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>

#include "obs/json.h"
#include "obs/trace.h"

namespace iflex {
namespace obs {

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kWarn:
      return "warn";
    case LogLevel::kError:
      return "error";
    case LogLevel::kOff:
      return "off";
  }
  return "info";
}

LogLevel ParseLogLevel(std::string_view text, LogLevel fallback) {
  std::string lower(text);
  for (char& c : lower) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  if (lower == "debug") return LogLevel::kDebug;
  if (lower == "info") return LogLevel::kInfo;
  if (lower == "warn" || lower == "warning") return LogLevel::kWarn;
  if (lower == "error") return LogLevel::kError;
  if (lower == "off" || lower == "none") return LogLevel::kOff;
  return fallback;
}

EventLog::EventLog(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity),
      slots_(new Slot[capacity == 0 ? 1 : capacity]) {}

EventLog::~EventLog() {
  std::lock_guard<std::mutex> lock(sink_mu_);
  if (sink_ != nullptr) std::fclose(sink_);
}

namespace {

// Truncated copy of `s` into `words` (relaxed atomic stores happen at the
// caller); unused bytes stay zero so decoding can strlen-scan.
void PackString(std::string_view s, uint64_t* words, size_t word_count) {
  char buf[EventLog::kMessageBytes];  // large enough for either field
  size_t n = std::min(s.size(), word_count * 8);
  std::memset(buf, 0, word_count * 8);
  std::memcpy(buf, s.data(), n);
  for (size_t i = 0; i < word_count; ++i) {
    std::memcpy(&words[i], buf + i * 8, 8);
  }
}

std::string UnpackString(const uint64_t* words, size_t word_count) {
  char buf[EventLog::kMessageBytes];
  for (size_t i = 0; i < word_count; ++i) {
    std::memcpy(buf + i * 8, &words[i], 8);
  }
  size_t len = 0;
  size_t max = word_count * 8;
  while (len < max && buf[len] != '\0') ++len;
  return std::string(buf, len);
}

void AppendEventJson(const LogEvent& ev, JsonWriter* w) {
  w->BeginObject();
  w->Key("ticket").Number(ev.ticket);
  w->Key("ts_ns").Number(ev.ts_ns);
  w->Key("level").String(LogLevelName(ev.level));
  w->Key("tid").Number(static_cast<uint64_t>(ev.tid));
  w->Key("site").String(ev.site);
  w->Key("msg").String(ev.message);
  w->EndObject();
}

}  // namespace

void EventLog::Log(LogLevel level, std::string_view site,
                   std::string_view message) {
  if (level == LogLevel::kOff || !ShouldLog(level)) return;
  uint64_t ticket = cursor_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[ticket % capacity_];

  uint64_t buf[kWordsPerSlot] = {};
  buf[0] = Tracer::NowNs();
  buf[1] = static_cast<uint64_t>(level) |
           (static_cast<uint64_t>(Tracer::CurrentTid()) << 8);
  PackString(site, &buf[2], kSiteWords);
  PackString(message, &buf[2 + kSiteWords], kMessageWords);

  // Seqlock write: mark the slot in-flight (odd), publish the payload,
  // mark it complete (even). The acq_rel exchange keeps the payload
  // stores from sinking above the odd mark; the release store keeps them
  // from floating below the even mark.
  slot.seq.exchange(ticket * 2 + 1, std::memory_order_acq_rel);
  for (size_t i = 0; i < kWordsPerSlot; ++i) {
    slot.words[i].store(buf[i], std::memory_order_relaxed);
  }
  slot.seq.store(ticket * 2 + 2, std::memory_order_release);

  if (!sink_active_.load(std::memory_order_relaxed)) return;
  std::lock_guard<std::mutex> lock(sink_mu_);
  if (sink_ != nullptr) {
    LogEvent ev;
    ev.ticket = ticket;
    ev.ts_ns = buf[0];
    ev.level = level;
    ev.tid = static_cast<uint32_t>(buf[1] >> 8);
    ev.site = std::string(site.substr(0, kSiteBytes));
    ev.message = std::string(message.substr(0, kMessageBytes));
    JsonWriter w;
    AppendEventJson(ev, &w);
    std::fputs(w.str().c_str(), sink_);
    std::fputc('\n', sink_);
    std::fflush(sink_);
  }
}

bool EventLog::DecodeSlot(const Slot& slot, LogEvent* out) const {
  for (int attempt = 0; attempt < 4; ++attempt) {
    uint64_t s1 = slot.seq.load(std::memory_order_acquire);
    if (s1 == 0) return false;  // never written
    if (s1 & 1) continue;       // write in flight — retry briefly
    uint64_t buf[kWordsPerSlot];
    for (size_t i = 0; i < kWordsPerSlot; ++i) {
      buf[i] = slot.words[i].load(std::memory_order_relaxed);
    }
    std::atomic_thread_fence(std::memory_order_acquire);
    if (slot.seq.load(std::memory_order_relaxed) != s1) continue;
    out->ticket = s1 / 2 - 1;
    out->ts_ns = buf[0];
    out->level = static_cast<LogLevel>(buf[1] & 0xff);
    out->tid = static_cast<uint32_t>(buf[1] >> 8);
    out->site = UnpackString(&buf[2], kSiteWords);
    out->message = UnpackString(&buf[2 + kSiteWords], kMessageWords);
    return true;
  }
  return false;  // churning slot: its event aged out anyway
}

std::vector<LogEvent> EventLog::Snapshot() const {
  std::vector<LogEvent> out;
  out.reserve(std::min<uint64_t>(total(), capacity_));
  for (size_t i = 0; i < capacity_; ++i) {
    LogEvent ev;
    if (DecodeSlot(slots_[i], &ev)) out.push_back(std::move(ev));
  }
  std::sort(out.begin(), out.end(),
            [](const LogEvent& a, const LogEvent& b) {
              return a.ticket < b.ticket;
            });
  return out;
}

void EventLog::Clear() {
  cursor_.store(0, std::memory_order_relaxed);
  for (size_t i = 0; i < capacity_; ++i) {
    for (size_t w = 0; w < kWordsPerSlot; ++w) {
      slots_[i].words[w].store(0, std::memory_order_relaxed);
    }
    slots_[i].seq.store(0, std::memory_order_release);
  }
}

std::string EventLog::ToJsonl() const {
  std::string out;
  for (const LogEvent& ev : Snapshot()) {
    JsonWriter w;
    AppendEventJson(ev, &w);
    out += w.str();
    out.push_back('\n');
  }
  return out;
}

bool EventLog::WriteJsonl(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::string body = ToJsonl();
  size_t written = std::fwrite(body.data(), 1, body.size(), f);
  bool ok = (written == body.size());
  ok = (std::fclose(f) == 0) && ok;
  return ok;
}

std::vector<std::string> EventLog::FormatRecent(size_t max_events) const {
  std::vector<LogEvent> events = Snapshot();
  if (events.size() > max_events) {
    events.erase(events.begin(),
                 events.end() - static_cast<ptrdiff_t>(max_events));
  }
  std::vector<std::string> out;
  out.reserve(events.size());
  uint64_t base = events.empty() ? 0 : events.front().ts_ns;
  char buf[64];
  for (const LogEvent& ev : events) {
    double rel_ms =
        static_cast<double>(ev.ts_ns - base) / 1e6;
    std::snprintf(buf, sizeof(buf), "[%-5s] +%9.3fms tid=%u ",
                  LogLevelName(ev.level), rel_ms, ev.tid);
    std::string line(buf);
    line += ev.site;
    line += ": ";
    line += ev.message;
    out.push_back(std::move(line));
  }
  return out;
}

bool EventLog::SetJsonlSink(const std::string& path) {
  std::lock_guard<std::mutex> lock(sink_mu_);
  if (sink_ != nullptr) {
    std::fclose(sink_);
    sink_ = nullptr;
  }
  if (path.empty()) {
    sink_active_.store(false, std::memory_order_relaxed);
    return true;
  }
  sink_ = std::fopen(path.c_str(), "a");
  sink_active_.store(sink_ != nullptr, std::memory_order_relaxed);
  return sink_ != nullptr;
}

EventLog& DefaultEventLog() {
  static EventLog* log = [] {
    auto* l = new EventLog();
    if (const char* env = std::getenv("IFLEX_LOG")) {
      l->set_level(ParseLogLevel(env, LogLevel::kInfo));
    }
    if (const char* sink = std::getenv("IFLEX_LOG_JSONL")) {
      if (sink[0] != '\0') l->SetJsonlSink(sink);
    }
    return l;
  }();
  return *log;
}

}  // namespace obs
}  // namespace iflex
