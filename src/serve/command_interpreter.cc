#include "serve/command_interpreter.h"

#include <chrono>
#include <fstream>
#include <sstream>
#include <thread>

#include "common/strutil.h"
#include "datagen/books.h"
#include "datagen/dblife.h"
#include "datagen/dblp.h"
#include "datagen/movies.h"
#include "exec/executor.h"
#include "obs/cost_model.h"
#include "obs/openmetrics.h"
#include "obs/trace.h"
#include "runtime/task_pool.h"
#include "text/markup_parser.h"

namespace iflex {
namespace serve {

CommandInterpreter::CommandInterpreter(InterpreterOptions options)
    : options_(std::move(options)), catalog_(&corpus_) {
  catalog_.RegisterBuiltinFunctions();
}

obs::MetricRegistry& CommandInterpreter::metrics() const {
  return options_.metrics != nullptr ? *options_.metrics
                                     : obs::DefaultMetrics();
}

obs::CostModel& CommandInterpreter::cost_model() const {
  return *obs::CostModelOrDefault(options_.cost_model);
}

obs::Tracer& CommandInterpreter::tracer() const {
  return *obs::TracerOrDefault(options_.tracer);
}

resilience::Deadline CommandInterpreter::EffectiveDeadline(
    const resilience::Deadline& request) const {
  if (!request.IsNever()) return request;
  if (options_.default_deadline_ms > 0) {
    return resilience::Deadline::AfterMillis(options_.default_deadline_ms);
  }
  return resilience::Deadline::Never();
}

CommandOutcome CommandInterpreter::Interpret(
    const std::string& line, const resilience::Deadline& deadline) {
  CommandOutcome outcome = Dispatch(line, deadline);
  // Deterministic session-state gauges: functions of the corpus, catalog,
  // and program text only — never of timing or execution order. Recovery
  // tests compare the iflex_session_* telemetry families of a replayed
  // session byte-for-byte against an uninterrupted one.
  obs::MetricRegistry& reg = metrics();
  reg.gauge("session.documents")->Set(static_cast<double>(corpus_.size()));
  reg.gauge("session.tables")
      ->Set(static_cast<double>(catalog_.TableNames().size()));
  reg.gauge("session.program_bytes")
      ->Set(static_cast<double>(program_src_.size()));
  return outcome;
}

CommandOutcome CommandInterpreter::Dispatch(
    const std::string& line, const resilience::Deadline& deadline) {
  CommandOutcome outcome;
  std::istringstream in(line);
  std::string cmd;
  in >> cmd;
  if (cmd.empty() || cmd[0] == '#') return outcome;
  if (cmd == "quit" || cmd == "exit") {
    outcome.quit = true;
    return outcome;
  }
  if (cmd == "help") {
    outcome.output = HelpText();
    return outcome;
  }
  if (cmd == "gen") {
    outcome.status = Gen(in, &outcome.output);
    return outcome;
  }
  if (cmd == "load") {
    outcome.status = Load(in, &outcome.output);
    return outcome;
  }
  if (cmd == "declare") {
    outcome.status = Declare(in);
    return outcome;
  }
  if (cmd == "rule") {
    // Take the remainder of the line from the stream position (never
    // substr on a fixed offset: a bare "rule" must be a typed error,
    // not an out_of_range throw that can kill a server thread).
    std::string rest;
    std::getline(in, rest);
    size_t body = rest.find_first_not_of(" \t");
    if (body == std::string::npos) {
      outcome.status =
          Status::InvalidArgument("usage: rule <alog rule ending in '.'>");
      return outcome;
    }
    program_src_ += rest.substr(body);
    program_src_ += "\n";
    return outcome;
  }
  if (cmd == "program") {
    outcome.output = program_src_;
    return outcome;
  }
  if (cmd == "clear") {
    program_src_.clear();
    return outcome;
  }
  if (cmd == "query") {
    in >> query_;
    return outcome;
  }
  if (cmd == "tables") {
    outcome.status = Tables(&outcome.output);
    return outcome;
  }
  if (cmd == "constrain") {
    outcome.status = Constrain(in, &outcome.output);
    return outcome;
  }
  if (cmd == "run") {
    outcome.status = Execute(EffectiveDeadline(deadline), &outcome.output);
    // The executor filled last_report_ even on the error path (deadline /
    // cancel dumps the flight recorder); surface it either way.
    outcome.degraded = last_report_.degraded;
    outcome.flight_recorder = last_report_.flight_recorder;
    return outcome;
  }
  if (cmd == "trace") {
    obs::Tracer& t = tracer();
    if (!t.enabled()) {
      t.set_enabled(true);
      outcome.output = "tracing enabled; 'run' then 'trace' again\n";
      return outcome;
    }
    outcome.output = t.SummaryTree();
    return outcome;
  }
  if (cmd == "explain") {
    outcome.status = Explain(&outcome.output);
    return outcome;
  }
  if (cmd == "telemetry") {
    outcome.status = Telemetry(in, &outcome.output);
    return outcome;
  }
  if (cmd == "sleep") {
    outcome.status = Sleep(in, EffectiveDeadline(deadline));
    return outcome;
  }
  outcome.status =
      Status::InvalidArgument("unknown command '" + cmd + "' (try: help)");
  return outcome;
}

std::string CommandInterpreter::HelpText() {
  return
      "commands:\n"
      "  gen movies|dblp|books|dblife    generate a synthetic domain\n"
      "  load <table> <file> [...]       load markup files into a table\n"
      "  declare <iepred> <nin> <nout>   declare an IE predicate\n"
      "  rule <alog rule ending in '.'>  append a rule to the program\n"
      "  program | clear                 show / reset the program text\n"
      "  query <predicate>               set the query predicate\n"
      "  constrain <iepred> <idx> <feature> [param] [value]\n"
      "                                  add a domain constraint\n"
      "  run                             execute and print the result\n"
      "  trace                           enable span tracing / print the\n"
      "                                  recorded span tree of the runs\n"
      "                                  so far\n"
      "  explain                         enable the attribution profiler\n"
      "                                  / print the (rule, operator)\n"
      "                                  cost table of the runs so far\n"
      "  telemetry [file]                print (or write) the metric\n"
      "                                  registry as OpenMetrics text\n"
      "  tables                          list extensional tables\n"
      "  sleep <ms>                      hold the session busy (deadline-\n"
      "                                  aware; load tests / admission)\n"
      "  quit\n";
}

Status CommandInterpreter::Gen(std::istringstream& in, std::string* out) {
  std::string domain;
  in >> domain;
  auto add_table = [this](const char* name,
                          const std::vector<DocId>& docs) -> Status {
    CompactTable t({"x"});
    for (DocId d : docs) {
      CompactTuple tup;
      tup.cells.push_back(Cell::Exact(Value::Doc(d)));
      t.Add(std::move(tup));
    }
    return catalog_.AddTable(name, std::move(t));
  };
  if (domain == "movies") {
    MoviesSpec spec;
    spec.n_imdb = 50;
    spec.n_ebert = 50;
    spec.n_prasanna = 50;
    spec.n_shared = 10;
    MoviesData data = GenerateMovies(&corpus_, spec);
    std::vector<DocId> imdb, ebert, prasanna;
    for (const auto& m : data.imdb) imdb.push_back(m.doc);
    for (const auto& m : data.ebert) ebert.push_back(m.doc);
    for (const auto& m : data.prasanna) prasanna.push_back(m.doc);
    IFLEX_RETURN_NOT_OK(add_table("imdbPages", imdb));
    IFLEX_RETURN_NOT_OK(add_table("ebertPages", ebert));
    IFLEX_RETURN_NOT_OK(add_table("prasannaPages", prasanna));
  } else if (domain == "dblp") {
    DblpSpec spec;
    spec.n_garcia = 40;
    spec.n_vldb = 60;
    spec.n_sigmod = 40;
    spec.n_icde = 40;
    spec.n_shared_teams = 8;
    DblpData data = GenerateDblp(&corpus_, spec);
    std::vector<DocId> garcia, vldb, sigmod, icde;
    for (const auto& p : data.garcia) garcia.push_back(p.doc);
    for (const auto& p : data.vldb) vldb.push_back(p.doc);
    for (const auto& p : data.sigmod) sigmod.push_back(p.doc);
    for (const auto& p : data.icde) icde.push_back(p.doc);
    IFLEX_RETURN_NOT_OK(add_table("garciaPages", garcia));
    IFLEX_RETURN_NOT_OK(add_table("vldbPages", vldb));
    IFLEX_RETURN_NOT_OK(add_table("sigmodPages", sigmod));
    IFLEX_RETURN_NOT_OK(add_table("icdePages", icde));
  } else if (domain == "books") {
    BooksSpec spec;
    spec.n_amazon = 60;
    spec.n_barnes = 80;
    spec.n_shared = 15;
    BooksData data = GenerateBooks(&corpus_, spec);
    std::vector<DocId> amazon, barnes;
    for (const auto& b : data.amazon) amazon.push_back(b.doc);
    for (const auto& b : data.barnes) barnes.push_back(b.doc);
    IFLEX_RETURN_NOT_OK(add_table("amazonPages", amazon));
    IFLEX_RETURN_NOT_OK(add_table("barnesPages", barnes));
  } else if (domain == "dblife") {
    DblifeData data = GenerateDblife(&corpus_, DblifeSpec{});
    IFLEX_RETURN_NOT_OK(add_table("docs", data.all_docs));
  } else {
    return Status::InvalidArgument("unknown domain " + domain);
  }
  *out = StringPrintf("generated %s (%zu documents)\n", domain.c_str(),
                      corpus_.size());
  return Status::OK();
}

Status CommandInterpreter::Load(std::istringstream& in, std::string* out) {
  std::string table;
  in >> table;
  if (table.empty()) {
    return Status::InvalidArgument("usage: load <table> <file> [...]");
  }
  CompactTable t({"x"});
  std::string path;
  while (in >> path) {
    std::ifstream file(path);
    if (!file) return Status::NotFound("cannot open " + path);
    std::stringstream buf;
    buf << file.rdbuf();
    IFLEX_ASSIGN_OR_RETURN(Document doc, ParseMarkup(path, buf.str()));
    DocId d = corpus_.Add(std::move(doc));
    CompactTuple tup;
    tup.cells.push_back(Cell::Exact(Value::Doc(d)));
    t.Add(std::move(tup));
  }
  *out = StringPrintf("loaded %zu document(s) into %s\n", t.size(),
                      table.c_str());
  return catalog_.AddTable(table, std::move(t));
}

Status CommandInterpreter::Declare(std::istringstream& in) {
  std::string name;
  size_t nin = 0, nout = 0;
  in >> name >> nin >> nout;
  return catalog_.DeclareIEPredicate(name, nin, nout);
}

Status CommandInterpreter::Tables(std::string* out) {
  for (const std::string& name : catalog_.TableNames()) {
    *out += StringPrintf("  %s (%zu tuples)\n", name.c_str(),
                         (*catalog_.Table(name))->size());
  }
  return Status::OK();
}

Status CommandInterpreter::Constrain(std::istringstream& in,
                                     std::string* out) {
  std::string pred, feature, token;
  size_t idx = 0;
  in >> pred >> idx >> feature;
  if (feature.empty()) {
    return Status::InvalidArgument(
        "usage: constrain <iepred> <idx> <feature> [param] [value]");
  }
  FeatureParam param;
  FeatureValue value = FeatureValue::kYes;
  while (in >> token) {
    auto fv = FeatureValueFromString(token);
    if (fv.ok()) {
      value = *fv;
    } else if (auto n = ParseLooseNumber(token)) {
      param = FeatureParam::Num(*n);
    } else {
      param = FeatureParam::Str(token);
    }
  }
  IFLEX_ASSIGN_OR_RETURN(Program prog, CurrentProgram());
  IFLEX_RETURN_NOT_OK(
      prog.AddConstraint(catalog_, pred, idx, feature, param, value));
  program_src_ = prog.ToString();
  *out = "program is now:\n" + program_src_;
  return Status::OK();
}

Result<Program> CommandInterpreter::CurrentProgram() {
  if (program_src_.empty()) {
    return Status::InvalidArgument("no rules yet (use: rule ...)");
  }
  IFLEX_ASSIGN_OR_RETURN(Program prog, ParseProgram(program_src_, catalog_));
  if (!query_.empty()) prog.set_query(query_);
  return prog;
}

Status CommandInterpreter::Explain(std::string* out) {
  obs::CostModel& model = cost_model();
  if (!model.enabled()) {
    model.set_enabled(true);
    *out = "attribution profiler enabled; 'run' then 'explain' again\n";
    return Status::OK();
  }
  obs::ExplainReport report = model.Report();
  if (report.empty()) {
    *out = "nothing charged yet (profiler is on; try 'run')\n";
    return Status::OK();
  }
  *out = report.ToText();
  return Status::OK();
}

std::string CommandInterpreter::TelemetryText() const {
  obs::OpenMetricsOptions options;
  options.labels = options_.telemetry_labels;
  options.labels["threads"] = std::to_string(
      options_.pool != nullptr ? options_.pool->thread_count() : 1);
  return obs::ToOpenMetrics(metrics(), options);
}

Status CommandInterpreter::Telemetry(std::istringstream& in,
                                     std::string* out) {
  std::string path;
  in >> path;
  if (path.empty()) {
    *out = TelemetryText();
    return Status::OK();
  }
  obs::OpenMetricsOptions options;
  options.labels = options_.telemetry_labels;
  options.labels["threads"] = std::to_string(
      options_.pool != nullptr ? options_.pool->thread_count() : 1);
  if (!obs::WriteOpenMetrics(metrics(), path, options)) {
    return Status::NotFound("cannot write " + path);
  }
  *out = "wrote " + path + "\n";
  return Status::OK();
}

Status CommandInterpreter::Sleep(std::istringstream& in,
                                 const resilience::Deadline& deadline) {
  int64_t ms = 0;
  in >> ms;
  if (ms <= 0) return Status::InvalidArgument("usage: sleep <ms>");
  // Deadline-aware busy-hold: sleeps in small slices so a per-request
  // deadline interrupts it promptly — the serving tests use this to pin
  // admission-queue and in-flight deadline behaviour.
  resilience::Deadline end = resilience::Deadline::AfterMillis(ms);
  while (!end.Expired()) {
    if (deadline.Expired()) {
      return Status::DeadlineExceeded("sleep exceeded its deadline");
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return Status::OK();
}

Status CommandInterpreter::Execute(const resilience::Deadline& deadline,
                                   std::string* out) {
  IFLEX_ASSIGN_OR_RETURN(Program prog, CurrentProgram());
  ExecOptions options;
  options.pool = options_.pool;
  // Shared registry so the telemetry command sees the runs' counters;
  // same for the profiler/tracer the explain and trace commands read
  // (per-session in iflexd, the process defaults in the shell).
  options.metrics = &metrics();
  options.cost_model = &cost_model();
  options.tracer = &tracer();
  options.deadline = deadline;
  options.best_effort = options_.best_effort;
  options.report = &last_report_;
  Executor exec(catalog_, options);
  IFLEX_ASSIGN_OR_RETURN(CompactTable result, exec.Execute(prog));
  *out += StringPrintf("%zu compact tuple(s), ~%.0f candidate tuple(s)\n",
                       result.size(), result.ExpandedTupleCount(corpus_));
  size_t shown = 0;
  for (const CompactTuple& t : result.tuples()) {
    if (shown++ >= 10) {
      *out += StringPrintf("  ... (%zu more)\n", result.size() - 10);
      break;
    }
    *out += StringPrintf("  %s\n", t.ToString(&corpus_).c_str());
  }
  if (last_report_.degraded) {
    *out += StringPrintf("  [%s]\n", last_report_.ToString().c_str());
  }
  return Status::OK();
}

}  // namespace serve
}  // namespace iflex
