#ifndef IFLEX_SERVE_WIRE_H_
#define IFLEX_SERVE_WIRE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace iflex {
namespace serve {

/// Frame bound: a request line longer than this (without a newline) is a
/// protocol error and closes the connection (docs/SERVING.md).
inline constexpr size_t kDefaultMaxFrameBytes = 64 * 1024;

/// One parsed request line. Grammar (docs/SERVING.md):
///
///   request   := verb [operand...] '\n'
///   open      := "open" SP session-id
///   close     := "close" SP session-id
///   recover   := "recover" SP session-id
///   persist   := "persist" SP session-id
///   cmd       := "cmd" SP session-id [SP "--deadline-ms" SP N] SP command
///   telemetry := "telemetry" [SP session-id]
///   explain   := "explain" SP session-id
///   sessions  := "sessions"
///   ping      := "ping"
///   shutdown  := "shutdown"
///
/// `command` is the rest of the line, handed verbatim to the session's
/// CommandInterpreter (same grammar as the iflex shell).
struct Request {
  std::string verb;
  std::string session;
  /// Per-request deadline in ms, counted from admission (so time spent
  /// queued burns it); 0 = the server's default.
  int64_t deadline_ms = 0;
  std::string command;  // cmd only
};

/// True iff `id` is a valid session id: [A-Za-z0-9_.-]{1,64}. Ids are
/// embedded in OpenMetrics label values, so the charset is restrictive.
bool IsValidSessionId(const std::string& id);

/// Parses one request line (no trailing newline). Unknown verbs, missing
/// or malformed operands return kInvalidArgument.
Result<Request> ParseRequest(const std::string& line);

/// One response, serialized as a single JSON line:
///   {"status":"ok"|"error","code":"<StatusCodeToString>",
///    "output":"...",["session":"...",]["error":"...",]
///    ["degraded":true,"flight_recorder":["...",...]]}
struct Response {
  Status status;
  std::string session;
  std::string output;
  bool degraded = false;
  std::vector<std::string> flight_recorder;

  /// Single line, no trailing newline.
  std::string ToJson() const;
};

/// Decoded response (the load-driver client and the tests read these).
struct ParsedResponse {
  bool ok = false;
  std::string code;
  std::string session;
  std::string output;
  std::string error;
  bool degraded = false;
  std::vector<std::string> flight_recorder;
};

/// Parses the flat JSON object ToJson() emits (string / bool /
/// array-of-string values; full string-escape handling). Not a general
/// JSON parser — unknown keys are skipped, nested objects rejected.
Result<ParsedResponse> ParseResponse(const std::string& json_line);

}  // namespace serve
}  // namespace iflex

#endif  // IFLEX_SERVE_WIRE_H_
