// iflexd: the multi-session extraction daemon. Hosts N independent
// corpora/refinement sessions behind the newline-delimited protocol in
// serve/wire.h (docs/SERVING.md) over TCP on 127.0.0.1.
//
//   ./iflexd --port 7433 --threads 4 --max-concurrent 4 --max-queue 16
//
// Talk to it with anything that speaks lines, e.g.:
//
//   printf 'open s1\ncmd s1 gen movies\ncmd s1 rule q(t) :- ...\n' | nc ...
//
// Stops on SIGINT/SIGTERM or the `shutdown` protocol verb.
#include <csignal>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "serve/server.h"

namespace {

// Async-signal-safe: the handler only flips a flag; the main loop polls
// it alongside the protocol's `shutdown` verb.
volatile std::sig_atomic_t g_signalled = 0;

void HandleSignal(int) { g_signalled = 1; }

}  // namespace

int main(int argc, char** argv) {
  iflex::serve::ServerOptions options;
  options.threads = 0;  // daemon default: size the pool to the hardware
  for (int i = 1; i < argc; ++i) {
    auto next_num = [&](int64_t* out) {
      if (i + 1 >= argc) return false;
      *out = std::strtol(argv[++i], nullptr, 10);
      return true;
    };
    int64_t v = 0;
    if (std::strcmp(argv[i], "--port") == 0 && next_num(&v)) {
      options.port = static_cast<uint16_t>(v);
    } else if (std::strcmp(argv[i], "--threads") == 0 && next_num(&v)) {
      options.threads = static_cast<size_t>(v);
    } else if (std::strcmp(argv[i], "--max-sessions") == 0 && next_num(&v)) {
      options.max_sessions = static_cast<size_t>(v);
    } else if (std::strcmp(argv[i], "--max-concurrent") == 0 &&
               next_num(&v)) {
      options.max_concurrent = static_cast<size_t>(v);
    } else if (std::strcmp(argv[i], "--max-queue") == 0 && next_num(&v)) {
      options.max_queue = static_cast<size_t>(v);
    } else if (std::strcmp(argv[i], "--deadline-ms") == 0 && next_num(&v)) {
      options.default_deadline_ms = v;
    } else if (std::strcmp(argv[i], "--no-best-effort") == 0) {
      options.best_effort = false;
    } else {
      std::fprintf(
          stderr,
          "usage: iflexd [--port N] [--threads N] [--max-sessions N]\n"
          "              [--max-concurrent N] [--max-queue N]\n"
          "              [--deadline-ms N] [--no-best-effort]\n");
      return 2;
    }
  }
  iflex::serve::Server server(options);
  iflex::Status st = server.Start();
  if (!st.ok()) {
    std::fprintf(stderr, "iflexd: %s\n", st.ToString().c_str());
    return 1;
  }
  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  std::printf("iflexd listening on 127.0.0.1:%u\n", server.port());
  std::fflush(stdout);
  while (g_signalled == 0 && !server.shutdown_requested()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  server.Stop();
  std::printf("iflexd stopped\n");
  return 0;
}
