// iflexd: the multi-session extraction daemon. Hosts N independent
// corpora/refinement sessions behind the newline-delimited protocol in
// serve/wire.h (docs/SERVING.md) over TCP on 127.0.0.1.
//
//   ./iflexd --port 7433 --threads 4 --max-concurrent 4 --max-queue 16
//   ./iflexd --port 7433 --data-dir /var/lib/iflexd --fsync every
//
// Talk to it with anything that speaks lines, e.g.:
//
//   printf 'open s1\ncmd s1 gen movies\ncmd s1 rule q(t) :- ...\n' | nc ...
//
// Stops on SIGINT/SIGTERM or the `shutdown` protocol verb.
#include <csignal>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "serve/server.h"

namespace {

// Async-signal-safe: the handler only flips a flag; the main loop polls
// it alongside the protocol's `shutdown` verb.
volatile std::sig_atomic_t g_signalled = 0;

void HandleSignal(int) { g_signalled = 1; }

}  // namespace

int main(int argc, char** argv) {
  // A client that hangs up mid-response must cost us one send() error,
  // not the process: every send already passes MSG_NOSIGNAL, and this
  // covers any other fd that might turn into a pipe/socket write (e.g.
  // stdout redirected into a closed pipe under a supervisor).
  std::signal(SIGPIPE, SIG_IGN);
  iflex::serve::ServerOptions options;
  options.threads = 0;  // daemon default: size the pool to the hardware
  bool flags_ok = true;
  for (int i = 1; i < argc && flags_ok; ++i) {
    auto next_num = [&](int64_t* out) {
      if (i + 1 >= argc) return false;
      *out = std::strtol(argv[++i], nullptr, 10);
      return true;
    };
    auto next_str = [&](std::string* out) {
      if (i + 1 >= argc) return false;
      *out = argv[++i];
      return true;
    };
    int64_t v = 0;
    std::string s;
    if (std::strcmp(argv[i], "--port") == 0 && next_num(&v)) {
      options.port = static_cast<uint16_t>(v);
    } else if (std::strcmp(argv[i], "--threads") == 0 && next_num(&v)) {
      options.threads = static_cast<size_t>(v);
    } else if (std::strcmp(argv[i], "--max-sessions") == 0 && next_num(&v)) {
      options.max_sessions = static_cast<size_t>(v);
    } else if (std::strcmp(argv[i], "--max-concurrent") == 0 &&
               next_num(&v)) {
      options.max_concurrent = static_cast<size_t>(v);
    } else if (std::strcmp(argv[i], "--max-queue") == 0 && next_num(&v)) {
      options.max_queue = static_cast<size_t>(v);
    } else if (std::strcmp(argv[i], "--deadline-ms") == 0 && next_num(&v)) {
      options.default_deadline_ms = v;
    } else if (std::strcmp(argv[i], "--no-best-effort") == 0) {
      options.best_effort = false;
    } else if (std::strcmp(argv[i], "--data-dir") == 0 && next_str(&s)) {
      options.data_dir = s;
    } else if (std::strcmp(argv[i], "--snapshot-every") == 0 &&
               next_num(&v)) {
      options.durability.snapshot_every = static_cast<size_t>(v < 0 ? 0 : v);
    } else if (std::strcmp(argv[i], "--fsync") == 0 && next_str(&s)) {
      if (s == "every") {
        options.durability.fsync = iflex::durability::FsyncPolicy::kEveryRecord;
      } else if (s == "off") {
        options.durability.fsync = iflex::durability::FsyncPolicy::kOff;
      } else if (s == "interval") {
        options.durability.fsync = iflex::durability::FsyncPolicy::kInterval;
      } else if (s.rfind("interval:", 0) == 0) {
        options.durability.fsync = iflex::durability::FsyncPolicy::kInterval;
        char* end = nullptr;
        long ms = std::strtol(s.c_str() + 9, &end, 10);
        if (s.size() == 9 || *end != '\0' || ms <= 0) {
          std::fprintf(stderr, "iflexd: --fsync interval:<ms> needs ms > 0\n");
          return 2;
        }
        options.durability.fsync_interval_ms = ms;
      } else {
        std::fprintf(stderr,
                     "iflexd: --fsync takes every | interval:<ms> | off\n");
        return 2;
      }
    } else {
      flags_ok = false;
    }
  }
  if (!flags_ok) {
    std::fprintf(
        stderr,
        "usage: iflexd [--port N] [--threads N] [--max-sessions N]\n"
        "              [--max-concurrent N] [--max-queue N]\n"
        "              [--deadline-ms N] [--no-best-effort]\n"
        "              [--data-dir DIR] [--fsync every|interval:<ms>|off]\n"
        "              [--snapshot-every N]\n");
    return 2;
  }
  iflex::serve::Server server(options);
  iflex::Status st = server.Start();
  if (!st.ok()) {
    std::fprintf(stderr, "iflexd: %s\n", st.ToString().c_str());
    return 1;
  }
  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  std::printf("iflexd listening on 127.0.0.1:%u\n", server.port());
  std::fflush(stdout);
  while (g_signalled == 0 && !server.shutdown_requested()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  server.Stop();
  std::printf("iflexd stopped\n");
  return 0;
}
