#include "serve/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace iflex {
namespace serve {

Status LineClient::Connect(uint16_t port) {
  Close();
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) return Status::Internal("socket: " + std::string(strerror(errno)));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status st = Status::Internal("connect: " + std::string(strerror(errno)));
    Close();
    return st;
  }
  int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  buffer_.clear();
  return Status::OK();
}

Status LineClient::Send(const std::string& line) {
  return SendRaw(line + "\n");
}

Status LineClient::SendRaw(const std::string& bytes) {
  if (fd_ < 0) return Status::Internal("not connected");
  size_t sent = 0;
  while (sent < bytes.size()) {
#ifdef MSG_NOSIGNAL
    ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                       MSG_NOSIGNAL);
#else
    ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent, 0);
#endif
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return Status::Internal("send: " + std::string(strerror(errno)));
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

Result<std::string> LineClient::ReadLine() {
  if (fd_ < 0) return Status::Internal("not connected");
  while (true) {
    size_t nl = buffer_.find('\n');
    if (nl != std::string::npos) {
      std::string line = buffer_.substr(0, nl);
      buffer_.erase(0, nl + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      return line;
    }
    char chunk[4096];
    ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n == 0) return Status::NotFound("connection closed by server");
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal("recv: " + std::string(strerror(errno)));
    }
    buffer_.append(chunk, static_cast<size_t>(n));
  }
}

Result<ParsedResponse> LineClient::Call(const std::string& line) {
  IFLEX_RETURN_NOT_OK(Send(line));
  IFLEX_ASSIGN_OR_RETURN(std::string raw, ReadLine());
  return ParseResponse(raw);
}

void LineClient::ShutdownWrite() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_WR);
}

void LineClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buffer_.clear();
}

}  // namespace serve
}  // namespace iflex
