#ifndef IFLEX_SERVE_CLIENT_H_
#define IFLEX_SERVE_CLIENT_H_

#include <cstdint>
#include <string>

#include "common/result.h"
#include "common/status.h"
#include "serve/wire.h"

namespace iflex {
namespace serve {

/// Minimal blocking client for the iflexd line protocol: one TCP
/// connection, newline-delimited requests out, one-line JSON responses
/// in. Used by the serving load driver (bench/bench_serve.cc), the serve
/// tests, and any script-side tooling. Not thread-safe.
class LineClient {
 public:
  LineClient() = default;
  ~LineClient() { Close(); }

  LineClient(const LineClient&) = delete;
  LineClient& operator=(const LineClient&) = delete;

  /// Connects to 127.0.0.1:port.
  Status Connect(uint16_t port);

  /// Sends `line` + '\n'.
  Status Send(const std::string& line);

  /// Sends bytes verbatim, no framing — the tests use this to leave a
  /// partial (truncated) frame on the wire.
  Status SendRaw(const std::string& bytes);

  /// Blocks for the next response line (newline stripped). kNotFound on
  /// clean EOF, kInternal on socket errors.
  Result<std::string> ReadLine();

  /// Send + ReadLine + ParseResponse in one step.
  Result<ParsedResponse> Call(const std::string& line);

  /// Half-closes the write side (the server sees EOF after any buffered
  /// bytes) — the tests use this to produce truncated frames.
  void ShutdownWrite();

  void Close();
  bool connected() const { return fd_ >= 0; }

 private:
  int fd_ = -1;
  std::string buffer_;
};

}  // namespace serve
}  // namespace iflex

#endif  // IFLEX_SERVE_CLIENT_H_
