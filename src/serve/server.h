#ifndef IFLEX_SERVE_SERVER_H_
#define IFLEX_SERVE_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "durability/session_log.h"
#include "obs/cost_model.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "resilience/deadline.h"
#include "runtime/task_pool.h"
#include "serve/command_interpreter.h"
#include "serve/wire.h"

namespace iflex {
namespace serve {

/// Bounded admission in front of the shared TaskPool: at most
/// `max_concurrent` cmd requests execute at once and at most `max_queue`
/// wait; anything beyond is rejected with the typed kOverloaded status
/// instead of queuing unboundedly. A queued request's deadline keeps
/// burning — expiry while queued returns kDeadlineExceeded without ever
/// starting the work. Admission is wake-order, not strictly FIFO.
class AdmissionController {
 public:
  AdmissionController(size_t max_concurrent, size_t max_queue)
      : max_concurrent_(max_concurrent < 1 ? 1 : max_concurrent),
        max_queue_(max_queue) {}

  /// OK (slot held; pair with Release), kOverloaded (queue full), or
  /// kDeadlineExceeded (expired while queued).
  Status Acquire(const resilience::Deadline& deadline);
  void Release();

  size_t running() const;
  size_t queued() const;

 private:
  const size_t max_concurrent_;
  const size_t max_queue_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  size_t running_ = 0;
  size_t queued_ = 0;
};

/// iflexd configuration.
struct ServerOptions {
  /// TCP port; 0 binds an ephemeral port (read it back via port()).
  /// The listener binds 127.0.0.1 only.
  uint16_t port = 0;
  /// Shared execution pool width: 0 = hardware concurrency, 1 = no pool
  /// (serial execution inside each request). Sessions share the pool;
  /// results are identical at any width.
  size_t threads = 1;
  /// Open-session cap; `open` beyond it is rejected kOverloaded.
  size_t max_sessions = 16;
  /// Admission control over cmd requests (see AdmissionController).
  size_t max_concurrent = 2;
  size_t max_queue = 8;
  /// Default per-request deadline for cmd; 0 = unbounded. A request's
  /// --deadline-ms overrides it.
  int64_t default_deadline_ms = 0;
  /// Longest accepted request line; longer frames close the connection.
  size_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// Best-effort execution inside sessions (degraded responses carry the
  /// flight recorder). On by default: a server should answer, not abort.
  bool best_effort = true;
  /// run_id label on every telemetry exposition; default "iflexd.<pid>".
  std::string run_id;
  /// Durable-session root (docs/ROBUSTNESS.md). Empty = ephemeral
  /// sessions (pre-durability behaviour). Non-empty: every session gets
  /// <data_dir>/<session-id>/ with a write-ahead command journal and
  /// periodic snapshots; Start()/RecoverAll() replays whatever is there.
  std::string data_dir;
  /// Journal fsync policy and snapshot cadence (used when data_dir set).
  durability::DurabilityOptions durability;
};

/// The iflexd extraction server: N independent corpora/refinement
/// sessions (one CommandInterpreter each) behind the newline-delimited
/// protocol in wire.h, served over TCP with thread-per-connection I/O.
///
/// Concurrency model (docs/SERVING.md):
///   - per-session serialization: a session mutex makes concurrent
///     clients of one session take turns, command by command;
///   - distinct sessions execute in parallel on their connection
///     threads, sharing one TaskPool for intra-query parallelism;
///   - admission control bounds how many cmd requests are in flight
///     across all sessions (typed kOverloaded beyond the bound);
///   - per-request deadlines start at admission, so queue wait counts.
///
/// HandleLine() is the transport-free entry point: the TCP layer, the
/// tests, and any future transport feed request lines through it.
class Server {
 public:
  explicit Server(ServerOptions options = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, and starts the accept loop. With a data_dir this
  /// first runs RecoverAll(), so recovered sessions answer before the
  /// first connection is accepted.
  Status Start();

  /// Scans data_dir and re-opens every session directory found there,
  /// replaying its journal (snapshot prefix first) through a fresh
  /// interpreter. Deterministic replay makes the recovered session
  /// byte-identical to one that never crashed. Damage degrades rather
  /// than aborts: torn tails are truncated silently (a crash artifact),
  /// mid-file corruption keeps the valid prefix and bumps
  /// serve.journal_truncated with a warn event. No-op without data_dir.
  /// Called by Start(); public for transport-free embedding (tests).
  Status RecoverAll();
  /// Closes the listener and every connection, then joins all threads.
  /// Idempotent. Must not be called from a connection thread — the
  /// `shutdown` verb instead flags shutdown_requested() for the owner.
  void Stop();

  /// Port actually bound (after Start; resolves port 0).
  uint16_t port() const { return port_; }

  /// Handles one request line (no trailing newline) and returns the
  /// one-line JSON response.
  std::string HandleLine(const std::string& line);

  /// Set by the `shutdown` verb; WaitForShutdown blocks until then (the
  /// iflexd main loop sits in it).
  bool shutdown_requested() const;
  void WaitForShutdown();

  /// Server-level registry ("serve.*": request counters, rejection
  /// counters, queue/request latency histograms, session gauge). The
  /// session-less `telemetry` verb renders this one.
  obs::MetricRegistry& metrics() { return metrics_; }

  size_t session_count() const;
  const ServerOptions& options() const { return options_; }

 private:
  struct Session {
    /// Serializes commands of this session; never held while another
    /// session's mutex is held (no lock order to violate).
    std::mutex mu;
    /// Private registry — the session's telemetry never interleaves with
    /// another session's (its exposition carries a session label).
    obs::MetricRegistry registry;
    /// Private profiler/tracer — one session's `explain`/`trace` never
    /// arms, or reads charges from, another session (or the process
    /// globals the shell uses).
    obs::CostModel cost_model;
    obs::Tracer tracer;
    CommandInterpreter interp;
    /// Write-ahead command journal + snapshots; null when the server has
    /// no data_dir. Guarded by `mu`, like the interpreter it shadows.
    std::unique_ptr<durability::SessionLog> log;
    /// Guarded by `mu`. Set when a failed `open`/`recover` rolls its
    /// table reservation back: a request that found the session while it
    /// was reserved must answer NotFound after taking the mutex, not run
    /// against a session that was never fully created.
    bool defunct = false;

    /// `options.metrics`/`cost_model`/`tracer` are pointed at this
    /// session's own instances (declaration order guarantees they are
    /// constructed first).
    explicit Session(InterpreterOptions options)
        : interp((options.metrics = &registry,
                  options.cost_model = &cost_model,
                  options.tracer = &tracer, std::move(options))) {}
  };

  Response Handle(const Request& req);
  Response HandleOpen(const Request& req);
  Response HandleClose(const Request& req);
  Response HandleCmd(const Request& req);
  Response HandleTelemetry(const Request& req);
  Response HandleExplain(const Request& req);
  Response HandleSessions();
  Response HandleRecover(const Request& req);
  Response HandlePersist(const Request& req);

  std::shared_ptr<Session> FindSession(const std::string& id) const;
  std::shared_ptr<Session> MakeSession(const std::string& id) const;
  std::string SessionDir(const std::string& id) const;
  /// Inserts `session` into the table under `id` before any disk work
  /// happens for it, so at most one open/recover owns an id (and its
  /// on-disk directory) at a time. AlreadyExists if the id is taken,
  /// Overloaded if the table is full.
  Status ReserveSession(const std::string& id,
                        const std::shared_ptr<Session>& session);
  /// Rolls a reservation back; removes the entry only if it still maps
  /// to `session` (never a successor that reused the id).
  void DropReservation(const std::string& id,
                       const std::shared_ptr<Session>& session);
  /// Opens <data_dir>/<id> and replays its durable history into
  /// `session` (attaching the session log). Caller holds session->mu.
  Status ReplaySession(const std::string& id, Session* session,
                       durability::RecoveryReport* report);
  /// Opens <data_dir>/<id> and replays its history into a fresh session.
  Result<std::shared_ptr<Session>> RecoverSession(
      const std::string& id, durability::RecoveryReport* report);
  /// Best-effort snapshot+compaction; counts and logs, never fails the
  /// surrounding request.
  void MaybeSnapshot(const std::string& id, Session* session);

  void AcceptLoop();
  void ServeConnection(int fd);

  ServerOptions options_;
  std::unique_ptr<runtime::TaskPool> pool_;
  obs::MetricRegistry metrics_;
  AdmissionController admission_;

  mutable std::mutex sessions_mu_;
  std::map<std::string, std::shared_ptr<Session>> sessions_;

  mutable std::mutex lifecycle_mu_;
  std::condition_variable shutdown_cv_;
  bool shutdown_requested_ = false;

  std::atomic<bool> stopping_{false};
  bool started_ = false;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::thread accept_thread_;
  mutable std::mutex conns_mu_;
  std::vector<int> conn_fds_;
  std::vector<std::thread> conn_threads_;
};

}  // namespace serve
}  // namespace iflex

#endif  // IFLEX_SERVE_SERVER_H_
