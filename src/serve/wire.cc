#include "serve/wire.h"

#include <cctype>
#include <sstream>

#include "obs/json.h"

namespace iflex {
namespace serve {

bool IsValidSessionId(const std::string& id) {
  if (id.empty() || id.size() > 64) return false;
  for (char c : id) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_' &&
        c != '.' && c != '-') {
      return false;
    }
  }
  return true;
}

namespace {

Status TakeSessionId(std::istringstream* in, const char* verb,
                     std::string* out) {
  *in >> *out;
  if (!IsValidSessionId(*out)) {
    return Status::InvalidArgument(
        std::string(verb) +
        ": expected a session id ([A-Za-z0-9_.-]{1,64})");
  }
  return Status::OK();
}

Status RejectTrailing(std::istringstream* in, const char* verb) {
  std::string extra;
  if (*in >> extra) {
    return Status::InvalidArgument(std::string(verb) +
                                   ": unexpected trailing operand '" + extra +
                                   "'");
  }
  return Status::OK();
}

}  // namespace

Result<Request> ParseRequest(const std::string& line) {
  Request req;
  std::istringstream in(line);
  in >> req.verb;
  if (req.verb.empty()) {
    return Status::InvalidArgument("empty request");
  }
  if (req.verb == "ping" || req.verb == "sessions" ||
      req.verb == "shutdown") {
    IFLEX_RETURN_NOT_OK(RejectTrailing(&in, req.verb.c_str()));
    return req;
  }
  if (req.verb == "open" || req.verb == "close" || req.verb == "explain" ||
      req.verb == "recover" || req.verb == "persist") {
    IFLEX_RETURN_NOT_OK(TakeSessionId(&in, req.verb.c_str(), &req.session));
    IFLEX_RETURN_NOT_OK(RejectTrailing(&in, req.verb.c_str()));
    return req;
  }
  if (req.verb == "telemetry") {
    in >> req.session;
    if (!req.session.empty() && !IsValidSessionId(req.session)) {
      return Status::InvalidArgument("telemetry: bad session id");
    }
    IFLEX_RETURN_NOT_OK(RejectTrailing(&in, "telemetry"));
    return req;
  }
  if (req.verb == "cmd") {
    IFLEX_RETURN_NOT_OK(TakeSessionId(&in, "cmd", &req.session));
    std::string token;
    if (!(in >> token)) {
      return Status::InvalidArgument("cmd: missing command");
    }
    if (token == "--deadline-ms") {
      if (!(in >> req.deadline_ms) || req.deadline_ms <= 0) {
        return Status::InvalidArgument("cmd: --deadline-ms needs N > 0");
      }
      if (!(in >> token)) {
        return Status::InvalidArgument("cmd: missing command");
      }
    }
    // The command is the rest of the line from `token` on, verbatim
    // (rule text is whitespace-sensitive enough to deserve it).
    std::string rest;
    std::getline(in, rest);
    req.command = token + rest;
    return req;
  }
  return Status::InvalidArgument("unknown verb '" + req.verb + "'");
}

std::string Response::ToJson() const {
  obs::JsonWriter w;
  w.BeginObject();
  w.Key("status").String(status.ok() ? "ok" : "error");
  w.Key("code").String(StatusCodeToString(status.code()));
  if (!session.empty()) w.Key("session").String(session);
  w.Key("output").String(output);
  if (!status.ok()) w.Key("error").String(status.message());
  if (degraded) {
    w.Key("degraded").Bool(true);
    w.Key("flight_recorder").BeginArray();
    for (const std::string& line : flight_recorder) w.String(line);
    w.EndArray();
  }
  w.EndObject();
  return w.Release();
}

namespace {

/// Pull-scanner over the one-line JSON object the server emits.
class Scanner {
 public:
  explicit Scanner(const std::string& s) : s_(s) {}

  void SkipWs() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }

  bool Eat(char c) {
    SkipWs();
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  char Peek() {
    SkipWs();
    return pos_ < s_.size() ? s_[pos_] : '\0';
  }

  Status String(std::string* out) {
    SkipWs();
    if (pos_ >= s_.size() || s_[pos_] != '"') {
      return Status::ParseError("expected string");
    }
    ++pos_;
    out->clear();
    while (pos_ < s_.size()) {
      char c = s_[pos_++];
      if (c == '"') return Status::OK();
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= s_.size()) break;
      char e = s_[pos_++];
      switch (e) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > s_.size()) {
            return Status::ParseError("truncated \\u escape");
          }
          unsigned v = 0;
          for (int i = 0; i < 4; ++i) {
            char h = s_[pos_++];
            v <<= 4;
            if (h >= '0' && h <= '9') {
              v += static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              v += static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              v += static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Status::ParseError("bad \\u escape");
            }
          }
          // The writer only emits \u00XX for control bytes; decode the
          // BMP point as UTF-8 for completeness.
          if (v < 0x80) {
            out->push_back(static_cast<char>(v));
          } else if (v < 0x800) {
            out->push_back(static_cast<char>(0xC0 | (v >> 6)));
            out->push_back(static_cast<char>(0x80 | (v & 0x3F)));
          } else {
            out->push_back(static_cast<char>(0xE0 | (v >> 12)));
            out->push_back(static_cast<char>(0x80 | ((v >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (v & 0x3F)));
          }
          break;
        }
        default:
          return Status::ParseError("bad escape");
      }
    }
    return Status::ParseError("unterminated string");
  }

  /// Skips one scalar value (number / true / false / null).
  Status SkipScalar() {
    SkipWs();
    size_t start = pos_;
    while (pos_ < s_.size() && s_[pos_] != ',' && s_[pos_] != '}' &&
           s_[pos_] != ']') {
      ++pos_;
    }
    if (pos_ == start) return Status::ParseError("expected value");
    return Status::OK();
  }

 private:
  const std::string& s_;
  size_t pos_ = 0;
};

}  // namespace

Result<ParsedResponse> ParseResponse(const std::string& json_line) {
  ParsedResponse out;
  Scanner sc(json_line);
  if (!sc.Eat('{')) return Status::ParseError("response: expected '{'");
  if (!sc.Eat('}')) {
    while (true) {
      std::string key;
      IFLEX_RETURN_NOT_OK(sc.String(&key));
      if (!sc.Eat(':')) return Status::ParseError("response: expected ':'");
      if (sc.Peek() == '"') {
        std::string value;
        IFLEX_RETURN_NOT_OK(sc.String(&value));
        if (key == "status") {
          out.ok = value == "ok";
        } else if (key == "code") {
          out.code = value;
        } else if (key == "session") {
          out.session = value;
        } else if (key == "output") {
          out.output = value;
        } else if (key == "error") {
          out.error = value;
        }
      } else if (sc.Peek() == '[') {
        sc.Eat('[');
        std::vector<std::string> items;
        if (!sc.Eat(']')) {
          while (true) {
            std::string item;
            IFLEX_RETURN_NOT_OK(sc.String(&item));
            items.push_back(std::move(item));
            if (sc.Eat(']')) break;
            if (!sc.Eat(',')) {
              return Status::ParseError("response: bad array");
            }
          }
        }
        if (key == "flight_recorder") out.flight_recorder = std::move(items);
      } else if (sc.Peek() == '{') {
        return Status::ParseError("response: nested objects unsupported");
      } else {
        // Scalars: the only one the writer emits is `degraded` (a bool).
        if (key == "degraded" && sc.Peek() == 't') out.degraded = true;
        IFLEX_RETURN_NOT_OK(sc.SkipScalar());
      }
      if (sc.Eat('}')) break;
      if (!sc.Eat(',')) return Status::ParseError("response: expected ','");
    }
  }
  return out;
}

}  // namespace serve
}  // namespace iflex
