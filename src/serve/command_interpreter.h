#ifndef IFLEX_SERVE_COMMAND_INTERPRETER_H_
#define IFLEX_SERVE_COMMAND_INTERPRETER_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "alog/catalog.h"
#include "alog/program.h"
#include "common/result.h"
#include "common/status.h"
#include "obs/metrics.h"
#include "resilience/deadline.h"
#include "resilience/report.h"
#include "text/corpus.h"

namespace iflex {

namespace runtime {
class TaskPool;
}  // namespace runtime

namespace obs {
class CostModel;
class Tracer;
}  // namespace obs

namespace serve {

/// Knobs shared by every surface that embeds an interpreter (the
/// interactive shell, iflexd server sessions, the serving bench's batch
/// reference runs).
struct InterpreterOptions {
  /// Execution pool for `run`; null runs fully serial. Several
  /// interpreters may share one pool — results are identical either way.
  runtime::TaskPool* pool = nullptr;
  /// Default time bound on each `run`/`sleep`; 0 = unbounded. A
  /// per-command deadline passed to Interpret() overrides it.
  int64_t default_deadline_ms = 0;
  /// Metric sink for executions and the `telemetry` command; null means
  /// the process-wide obs::DefaultMetrics() (the shell's behaviour).
  /// iflexd gives every session a private registry here so concurrent
  /// sessions' expositions never interleave.
  obs::MetricRegistry* metrics = nullptr;
  /// Attribution profiler armed/read by `explain` and charged by `run`;
  /// null means the process-wide obs::DefaultCostModel() (the shell's
  /// behaviour). iflexd gives every session its own model so one
  /// session's `explain` never flips profiling on, or mixes charges
  /// into, another session.
  obs::CostModel* cost_model = nullptr;
  /// Span sink armed/read by `trace` and recorded by `run`; null means
  /// the process-wide obs::DefaultTracer(). Per-session in iflexd for
  /// the same isolation reason.
  obs::Tracer* tracer = nullptr;
  /// Shared labels stamped on the `telemetry` exposition (the server
  /// adds session/run_id; `threads` is always derived from the pool).
  std::map<std::string, std::string> telemetry_labels = {
      {"scenario", "iflex_shell"}};
  /// Graceful degradation for `run` (docs/ROBUSTNESS.md): faults degrade
  /// the result and fill last_report() instead of aborting. iflexd turns
  /// this on so a degraded response can carry the flight recorder.
  bool best_effort = false;
};

/// Outcome of one interpreted command.
struct CommandOutcome {
  Status status;       // non-OK: the command failed (output may be partial)
  std::string output;  // text the surface shows or ships to the client
  bool quit = false;   // the command asked the surface to exit
  /// `run` only: the execution degraded (best-effort drops) — iflexd
  /// attaches the flight-recorder tail to the response in that case, and
  /// also when a run ends in deadline/cancel (the executor dumps the
  /// recorder for stopped runs too).
  bool degraded = false;
  std::vector<std::string> flight_recorder;
};

/// The develop/execute/refine command core shared by examples/iflex_shell
/// and iflexd (one interpreter per server session). Owns the corpus,
/// catalog, and program text of one refinement session. Not thread-safe:
/// callers serialize Interpret() per interpreter (iflexd holds the
/// session mutex; the shell is single-threaded).
class CommandInterpreter {
 public:
  explicit CommandInterpreter(InterpreterOptions options = {});

  /// Dispatches one command line (see HelpText() for the grammar).
  /// `deadline` bounds this command; Deadline::Never() falls back to
  /// options.default_deadline_ms.
  CommandOutcome Interpret(const std::string& line,
                           const resilience::Deadline& deadline);
  CommandOutcome Interpret(const std::string& line) {
    return Interpret(line, resilience::Deadline::Never());
  }

  /// The command grammar, shared verbatim by the shell's `help` and
  /// docs/SERVING.md.
  static std::string HelpText();

  /// Degradation report of the last `run` (best-effort mode): degraded
  /// flag, drops, and the flight-recorder tail. Cleared by each run.
  const resilience::ExecReport& last_report() const { return last_report_; }

  /// Rendered attribution table of the last `run`, when the cost model
  /// was enabled ("explain" arms it). Empty otherwise.
  const std::string& last_explain() const { return last_report_.explain; }

  /// The registry `run` charges and `telemetry` renders (the injected one
  /// or obs::DefaultMetrics()).
  obs::MetricRegistry& metrics() const;

  /// The profiler `explain` arms/reads (the injected one or
  /// obs::DefaultCostModel()).
  obs::CostModel& cost_model() const;

  /// The span sink `trace` arms/reads (the injected one or
  /// obs::DefaultTracer()).
  obs::Tracer& tracer() const;

  /// Renders metrics() as an OpenMetrics exposition with the configured
  /// shared labels (what `telemetry` prints when given no file).
  std::string TelemetryText() const;

  const Corpus& corpus() const { return corpus_; }
  const Catalog& catalog() const { return catalog_; }
  const std::string& program_src() const { return program_src_; }

 private:
  CommandOutcome Dispatch(const std::string& line,
                          const resilience::Deadline& deadline);
  Status Gen(std::istringstream& in, std::string* out);
  Status Load(std::istringstream& in, std::string* out);
  Status Declare(std::istringstream& in);
  Status Tables(std::string* out);
  Status Constrain(std::istringstream& in, std::string* out);
  Status Execute(const resilience::Deadline& deadline, std::string* out);
  Status Explain(std::string* out);
  Status Telemetry(std::istringstream& in, std::string* out);
  Status Sleep(std::istringstream& in, const resilience::Deadline& deadline);
  Result<Program> CurrentProgram();
  resilience::Deadline EffectiveDeadline(
      const resilience::Deadline& request) const;

  InterpreterOptions options_;
  Corpus corpus_;
  Catalog catalog_;
  std::string program_src_;
  std::string query_;
  resilience::ExecReport last_report_;
};

}  // namespace serve
}  // namespace iflex

#endif  // IFLEX_SERVE_COMMAND_INTERPRETER_H_
