#include "serve/server.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <exception>
#include <filesystem>
#include <thread>

#include "common/stopwatch.h"
#include "common/strutil.h"
#include "obs/event_log.h"
#include "obs/openmetrics.h"

namespace iflex {
namespace serve {

// ------------------------------------------------------- admission

Status AdmissionController::Acquire(const resilience::Deadline& deadline) {
  std::unique_lock<std::mutex> lock(mu_);
  if (running_ < max_concurrent_) {
    ++running_;
    return Status::OK();
  }
  if (queued_ >= max_queue_) {
    return Status::Overloaded(StringPrintf(
        "admission limit reached (%zu running, %zu queued)", running_,
        queued_));
  }
  ++queued_;
  auto admitted = [this] { return running_ < max_concurrent_; };
  if (deadline.IsNever()) {
    cv_.wait(lock, admitted);
  } else if (!cv_.wait_until(lock, deadline.time(), admitted)) {
    --queued_;
    return Status::DeadlineExceeded(
        "request deadline expired while queued for admission");
  }
  --queued_;
  ++running_;
  return Status::OK();
}

void AdmissionController::Release() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    --running_;
  }
  cv_.notify_one();
}

size_t AdmissionController::running() const {
  std::lock_guard<std::mutex> lock(mu_);
  return running_;
}

size_t AdmissionController::queued() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queued_;
}

namespace {

/// Holds one admission slot; Release() runs on every exit path, so a
/// throwing interpreter (or an early return) can never leak a slot and
/// silently shrink max_concurrent.
class AdmissionSlot {
 public:
  explicit AdmissionSlot(AdmissionController* admission)
      : admission_(admission) {}
  ~AdmissionSlot() { admission_->Release(); }
  AdmissionSlot(const AdmissionSlot&) = delete;
  AdmissionSlot& operator=(const AdmissionSlot&) = delete;

 private:
  AdmissionController* admission_;
};

}  // namespace

// ------------------------------------------------------- server core

Server::Server(ServerOptions options)
    : options_(std::move(options)),
      admission_(options_.max_concurrent, options_.max_queue) {
  if (options_.threads != 1) {
    pool_ = std::make_unique<runtime::TaskPool>(options_.threads);
  }
  if (options_.run_id.empty()) {
    options_.run_id = "iflexd." + std::to_string(::getpid());
  }
}

Server::~Server() { Stop(); }

std::shared_ptr<Server::Session> Server::FindSession(
    const std::string& id) const {
  std::lock_guard<std::mutex> lock(sessions_mu_);
  auto it = sessions_.find(id);
  return it == sessions_.end() ? nullptr : it->second;
}

Status Server::ReserveSession(const std::string& id,
                              const std::shared_ptr<Session>& session) {
  std::lock_guard<std::mutex> lock(sessions_mu_);
  if (sessions_.size() >= options_.max_sessions) {
    return Status::Overloaded(
        StringPrintf("session table full (%zu sessions)", sessions_.size()));
  }
  if (!sessions_.emplace(id, session).second) {
    return Status::AlreadyExists("session '" + id + "' is already open");
  }
  return Status::OK();
}

void Server::DropReservation(const std::string& id,
                             const std::shared_ptr<Session>& session) {
  std::lock_guard<std::mutex> lock(sessions_mu_);
  auto it = sessions_.find(id);
  if (it != sessions_.end() && it->second == session) sessions_.erase(it);
}

size_t Server::session_count() const {
  std::lock_guard<std::mutex> lock(sessions_mu_);
  return sessions_.size();
}

bool Server::shutdown_requested() const {
  std::lock_guard<std::mutex> lock(lifecycle_mu_);
  return shutdown_requested_;
}

void Server::WaitForShutdown() {
  std::unique_lock<std::mutex> lock(lifecycle_mu_);
  shutdown_cv_.wait(lock, [this] { return shutdown_requested_; });
}

std::string Server::HandleLine(const std::string& line) {
  metrics_.counter("serve.requests")->Add();
  Result<Request> req = ParseRequest(line);
  Response resp;
  if (!req.ok()) {
    metrics_.counter("serve.errors")->Add();
    resp.status = req.status();
    return resp.ToJson();
  }
  // A handler bug (or std::bad_alloc under load) must answer as a typed
  // Internal error, not unwind into the connection thread and
  // std::terminate the whole daemon.
  try {
    resp = Handle(*req);
  } catch (const std::exception& e) {
    metrics_.counter("serve.internal_errors")->Add();
    resp = Response{};
    resp.status =
        Status::Internal(std::string("unhandled exception: ") + e.what());
  } catch (...) {
    metrics_.counter("serve.internal_errors")->Add();
    resp = Response{};
    resp.status = Status::Internal("unhandled exception");
  }
  if (!resp.status.ok()) metrics_.counter("serve.errors")->Add();
  return resp.ToJson();
}

Response Server::Handle(const Request& req) {
  Response resp;
  resp.session = req.session;
  if (req.verb == "ping") {
    resp.output = "pong";
    return resp;
  }
  if (req.verb == "shutdown") {
    {
      std::lock_guard<std::mutex> lock(lifecycle_mu_);
      shutdown_requested_ = true;
    }
    shutdown_cv_.notify_all();
    resp.output = "shutting down";
    return resp;
  }
  if (req.verb == "open") return HandleOpen(req);
  if (req.verb == "close") return HandleClose(req);
  if (req.verb == "cmd") return HandleCmd(req);
  if (req.verb == "telemetry") return HandleTelemetry(req);
  if (req.verb == "explain") return HandleExplain(req);
  if (req.verb == "sessions") return HandleSessions();
  if (req.verb == "recover") return HandleRecover(req);
  if (req.verb == "persist") return HandlePersist(req);
  resp.status = Status::InvalidArgument("unknown verb '" + req.verb + "'");
  return resp;
}

std::shared_ptr<Server::Session> Server::MakeSession(
    const std::string& id) const {
  InterpreterOptions interp_options;
  interp_options.pool = pool_.get();
  interp_options.default_deadline_ms = options_.default_deadline_ms;
  interp_options.best_effort = options_.best_effort;
  interp_options.telemetry_labels = {{"scenario", "iflexd"},
                                     {"session", id},
                                     {"run_id", options_.run_id}};
  return std::make_shared<Session>(std::move(interp_options));
}

std::string Server::SessionDir(const std::string& id) const {
  return options_.data_dir + "/" + id;
}

Response Server::HandleOpen(const Request& req) {
  Response resp;
  resp.session = req.session;
  auto session = MakeSession(req.session);
  // Reserve the id BEFORE touching disk: a duplicate `open` against a
  // live durable session must never construct a second JournalWriter on
  // the live journal — the open-time tail truncation would race the live
  // writer's appends and silently drop durably-accepted commands. The
  // session mutex is held across reservation and log attach, so a
  // request that finds the reserved entry waits until the log is wired
  // (or the reservation is rolled back as defunct) instead of slipping
  // past journaling.
  std::unique_lock<std::mutex> session_lock(session->mu);
  Status reserved = ReserveSession(req.session, session);
  if (!reserved.ok()) {
    resp.status = std::move(reserved);
    return resp;
  }
  if (!options_.data_dir.empty()) {
    // `open` means a NEW durable session. Leftover state on disk (from a
    // crash or an earlier `close`) must not be silently shadowed by an
    // empty session — that is what `recover` is for. The reservation
    // guarantees no live writer exists for this directory, so probing it
    // here is safe.
    durability::RecoveryReport report;
    Result<std::unique_ptr<durability::SessionLog>> log =
        durability::SessionLog::Open(SessionDir(req.session),
                                     options_.durability, &report);
    if (!log.ok()) {
      session->defunct = true;
      DropReservation(req.session, session);
      resp.status = log.status();
      return resp;
    }
    if ((*log)->records() > 0 || report.commands > 0) {
      session->defunct = true;
      DropReservation(req.session, session);
      resp.status = Status::AlreadyExists(
          "session '" + req.session +
          "' has durable state on disk; `recover` it (or remove its "
          "directory) instead of re-opening");
      return resp;
    }
    session->log = std::move(*log);
  }
  metrics_.counter("serve.sessions_opened")->Add();
  metrics_.gauge("serve.sessions_active")
      ->Set(static_cast<double>(session_count()));
  obs::DefaultEventLog().Info(
      "serve.session", StringPrintf("opened session %s", req.session.c_str()));
  resp.output = "opened " + req.session;
  return resp;
}

Response Server::HandleClose(const Request& req) {
  Response resp;
  resp.session = req.session;
  std::shared_ptr<Session> session;
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    auto it = sessions_.find(req.session);
    if (it == sessions_.end()) {
      resp.status = Status::NotFound("no session '" + req.session + "'");
      return resp;
    }
    session = std::move(it->second);
    sessions_.erase(it);
  }
  // A command still running in this session holds its own shared_ptr;
  // the interpreter is destroyed when the last holder lets go.
  metrics_.counter("serve.sessions_closed")->Add();
  metrics_.gauge("serve.sessions_active")
      ->Set(static_cast<double>(session_count()));
  obs::DefaultEventLog().Info(
      "serve.session", StringPrintf("closed session %s", req.session.c_str()));
  resp.output = "closed " + req.session;
  return resp;
}

Response Server::HandleCmd(const Request& req) {
  Response resp;
  resp.session = req.session;
  std::shared_ptr<Session> session = FindSession(req.session);
  if (session == nullptr) {
    resp.status = Status::NotFound("no session '" + req.session + "'");
    return resp;
  }
  // The request deadline starts here — admission-queue wait burns it.
  int64_t deadline_ms = req.deadline_ms > 0 ? req.deadline_ms
                                            : options_.default_deadline_ms;
  resilience::Deadline deadline =
      deadline_ms > 0 ? resilience::Deadline::AfterMillis(deadline_ms)
                      : resilience::Deadline::Never();
  Stopwatch queue_watch;
  // Per-session serialization: concurrent clients of one session take
  // turns here; distinct sessions proceed in parallel. The session lock
  // is taken BEFORE admission so a client queued behind a long command
  // on one session never pins an admission slot other sessions could
  // use — and the wait itself honors the request deadline.
  std::unique_lock<std::mutex> session_lock(session->mu, std::defer_lock);
  if (deadline.IsNever()) {
    session_lock.lock();
  } else {
    while (!session_lock.try_lock()) {
      if (deadline.Expired()) {
        metrics_.histogram("serve.queue_ms")
            ->Record(queue_watch.ElapsedSeconds() * 1e3);
        metrics_.counter("serve.rejected_deadline")->Add();
        resp.status = Status::DeadlineExceeded(
            "request deadline expired while waiting for its session turn");
        return resp;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  if (session->defunct) {
    // Found while reserved by an open/recover that then failed and
    // rolled back: to the client this session never existed.
    resp.status = Status::NotFound("no session '" + req.session + "'");
    return resp;
  }
  Status admitted = admission_.Acquire(deadline);
  metrics_.histogram("serve.queue_ms")
      ->Record(queue_watch.ElapsedSeconds() * 1e3);
  if (!admitted.ok()) {
    if (admitted.code() == StatusCode::kOverloaded) {
      metrics_.counter("serve.rejected_overload")->Add();
    } else {
      metrics_.counter("serve.rejected_deadline")->Add();
    }
    resp.status = std::move(admitted);
    return resp;
  }
  AdmissionSlot slot(&admission_);
  Stopwatch run_watch;
  // Write-ahead journaling: a state-mutating command is made durable
  // (per the fsync policy) BEFORE it executes, so every command a client
  // saw accepted is replayable after a crash. Journal failure is a typed
  // rejection — the command never runs, keeping "accepted iff durable".
  // Commands are journaled regardless of their eventual outcome: the
  // interpreter is not transactional (a failing `gen` still grows the
  // corpus), so replay must reproduce failures too.
  if (session->log != nullptr &&
      durability::IsMutatingCommand(req.command)) {
    Status journaled = session->log->Append(req.command);
    if (!journaled.ok()) {
      metrics_.counter("serve.journal_failures")->Add();
      obs::DefaultEventLog().Warn(
          "serve.journal",
          StringPrintf("session %s: append failed: %s", req.session.c_str(),
                       journaled.message().c_str()));
      resp.status = std::move(journaled);
      return resp;
    }
    metrics_.counter("serve.journal_appends")->Add();
  }
  CommandOutcome outcome = session->interp.Interpret(req.command, deadline);
  resp.status = std::move(outcome.status);
  resp.output = std::move(outcome.output);
  resp.degraded = outcome.degraded;
  resp.flight_recorder = std::move(outcome.flight_recorder);
  if (session->log != nullptr && session->log->ShouldSnapshot()) {
    MaybeSnapshot(req.session, session.get());
  }
  metrics_.histogram("serve.request_ms")
      ->Record(run_watch.ElapsedSeconds() * 1e3);
  return resp;
}

void Server::MaybeSnapshot(const std::string& id, Session* session) {
  Status st = session->log->WriteSnapshot();
  if (st.ok()) {
    metrics_.counter("serve.snapshots")->Add();
    obs::DefaultEventLog().Info(
        "serve.snapshot",
        StringPrintf("session %s: snapshot at record %llu (%zu commands "
                     "after compaction)",
                     id.c_str(),
                     static_cast<unsigned long long>(session->log->watermark()),
                     session->log->last_snapshot_commands()));
  } else {
    // Snapshotting is housekeeping: the journal (or the previous
    // snapshot) is still authoritative, so the client's command is not
    // failed over this. Count and warn; the next boundary retries.
    metrics_.counter("serve.snapshot_failures")->Add();
    obs::DefaultEventLog().Warn(
        "serve.snapshot",
        StringPrintf("session %s: snapshot failed: %s", id.c_str(),
                     st.message().c_str()));
  }
}

Response Server::HandleTelemetry(const Request& req) {
  Response resp;
  resp.session = req.session;
  if (req.session.empty()) {
    // Server-wide registry under the server's own label set.
    obs::OpenMetricsOptions om;
    om.labels = {{"scenario", "iflexd"}, {"run_id", options_.run_id}};
    om.labels["threads"] =
        std::to_string(pool_ != nullptr ? pool_->thread_count() : 1);
    resp.output = obs::ToOpenMetrics(metrics_, om);
    return resp;
  }
  std::shared_ptr<Session> session = FindSession(req.session);
  if (session == nullptr) {
    resp.status = Status::NotFound("no session '" + req.session + "'");
    return resp;
  }
  std::lock_guard<std::mutex> session_lock(session->mu);
  if (session->defunct) {
    resp.status = Status::NotFound("no session '" + req.session + "'");
    return resp;
  }
  resp.output = session->interp.TelemetryText();
  return resp;
}

Response Server::HandleExplain(const Request& req) {
  Response resp;
  resp.session = req.session;
  std::shared_ptr<Session> session = FindSession(req.session);
  if (session == nullptr) {
    resp.status = Status::NotFound("no session '" + req.session + "'");
    return resp;
  }
  std::lock_guard<std::mutex> session_lock(session->mu);
  if (session->defunct) {
    resp.status = Status::NotFound("no session '" + req.session + "'");
    return resp;
  }
  CommandOutcome outcome = session->interp.Interpret("explain");
  resp.status = std::move(outcome.status);
  resp.output = std::move(outcome.output);
  return resp;
}

Response Server::HandleSessions() {
  Response resp;
  std::lock_guard<std::mutex> lock(sessions_mu_);
  for (const auto& [id, session] : sessions_) {
    (void)session;
    resp.output += id;
    resp.output += "\n";
  }
  return resp;
}

// ------------------------------------------------------- durability

Status Server::ReplaySession(const std::string& id, Session* session,
                             durability::RecoveryReport* report) {
  IFLEX_ASSIGN_OR_RETURN(
      session->log, durability::SessionLog::Open(SessionDir(id),
                                                 options_.durability, report));
  // Deterministic replay: the journaled command lines run through a
  // fresh interpreter exactly as they originally did, failures included.
  // Replay does not re-journal (the records are already on disk), so it
  // is idempotent — a crash mid-replay just replays again.
  for (const std::string& command : session->log->history()) {
    (void)session->interp.Interpret(command);
    metrics_.counter("serve.replayed_commands")->Add();
  }
  if (report->corrupt) {
    metrics_.counter("serve.journal_truncated")->Add();
    obs::DefaultEventLog().Warn(
        "serve.recovery",
        StringPrintf("session %s: journal damaged, degraded to %zu-command "
                     "prefix (%s)",
                     id.c_str(), report->commands, report->detail.c_str()));
  } else if (report->prefix_lost) {
    obs::DefaultEventLog().Warn(
        "serve.recovery",
        StringPrintf("session %s: %s", id.c_str(), report->detail.c_str()));
  } else if (report->torn_tail || report->snapshot_ignored) {
    obs::DefaultEventLog().Info(
        "serve.recovery",
        StringPrintf("session %s: %s", id.c_str(), report->detail.c_str()));
  }
  // Housekeeping at the recovery boundary: an overdue (or broken)
  // journal compacts before the session takes new traffic.
  if (session->log->ShouldSnapshot()) MaybeSnapshot(id, session);
  metrics_.counter("serve.sessions_recovered")->Add();
  obs::DefaultEventLog().Info(
      "serve.recovery",
      StringPrintf("recovered session %s: %zu command(s) replayed (%zu from "
                   "the snapshot)",
                   id.c_str(), report->commands, report->from_snapshot));
  return Status::OK();
}

Result<std::shared_ptr<Server::Session>> Server::RecoverSession(
    const std::string& id, durability::RecoveryReport* report) {
  auto session = MakeSession(id);
  IFLEX_RETURN_NOT_OK(ReplaySession(id, session.get(), report));
  return session;
}

Status Server::RecoverAll() {
  if (options_.data_dir.empty()) return Status::OK();
  std::error_code ec;
  std::filesystem::create_directories(options_.data_dir, ec);
  if (ec) {
    return Status::Internal(StringPrintf("create data dir %s: %s",
                                         options_.data_dir.c_str(),
                                         ec.message().c_str()));
  }
  for (const auto& entry :
       std::filesystem::directory_iterator(options_.data_dir, ec)) {
    if (!entry.is_directory()) continue;
    const std::string id = entry.path().filename().string();
    if (!IsValidSessionId(id)) {
      obs::DefaultEventLog().Warn(
          "serve.recovery",
          StringPrintf("ignoring %s: not a session id",
                       entry.path().c_str()));
      continue;
    }
    if (FindSession(id) != nullptr) continue;
    durability::RecoveryReport report;
    Result<std::shared_ptr<Session>> session = RecoverSession(id, &report);
    if (!session.ok()) {
      // One unrecoverable session must not keep the daemon (and every
      // other session) down; it stays on disk for offline inspection.
      obs::DefaultEventLog().Warn(
          "serve.recovery",
          StringPrintf("session %s: recovery failed: %s", id.c_str(),
                       session.status().message().c_str()));
      continue;
    }
    std::lock_guard<std::mutex> lock(sessions_mu_);
    if (sessions_.size() >= options_.max_sessions) {
      obs::DefaultEventLog().Warn(
          "serve.recovery",
          StringPrintf("session %s: not restored, session table full "
                       "(%zu); `recover` it after closing another",
                       id.c_str(), sessions_.size()));
      continue;
    }
    sessions_.emplace(id, std::move(*session));
  }
  if (ec) {
    return Status::Internal(StringPrintf("scan data dir %s: %s",
                                         options_.data_dir.c_str(),
                                         ec.message().c_str()));
  }
  metrics_.gauge("serve.sessions_active")
      ->Set(static_cast<double>(session_count()));
  return Status::OK();
}

Response Server::HandleRecover(const Request& req) {
  Response resp;
  resp.session = req.session;
  if (options_.data_dir.empty()) {
    resp.status = Status::InvalidArgument(
        "this server is ephemeral (no --data-dir); nothing to recover");
    return resp;
  }
  auto session = MakeSession(req.session);
  // Reserve the id before recovery starts: two concurrent `recover S`
  // must not both replay (and compact) the same directory — the second
  // JournalWriter/snapshot writer would race the first on journal.log
  // and snapshot.dat. The loser of the reservation answers AlreadyExists
  // before any disk work happens.
  std::unique_lock<std::mutex> session_lock(session->mu);
  Status reserved = ReserveSession(req.session, session);
  if (!reserved.ok()) {
    resp.status = std::move(reserved);
    return resp;
  }
  std::error_code ec;
  if (!std::filesystem::is_directory(SessionDir(req.session), ec)) {
    session->defunct = true;
    DropReservation(req.session, session);
    resp.status = Status::NotFound(
        "no durable state for session '" + req.session + "'");
    return resp;
  }
  durability::RecoveryReport report;
  Status recovered = ReplaySession(req.session, session.get(), &report);
  if (!recovered.ok()) {
    session->defunct = true;
    DropReservation(req.session, session);
    resp.status = std::move(recovered);
    return resp;
  }
  metrics_.gauge("serve.sessions_active")
      ->Set(static_cast<double>(session_count()));
  resp.output = StringPrintf(
      "recovered %s: %zu command(s) replayed (%zu from the snapshot)%s",
      req.session.c_str(), report.commands, report.from_snapshot,
      report.detail.empty() ? "" : (" [" + report.detail + "]").c_str());
  return resp;
}

Response Server::HandlePersist(const Request& req) {
  Response resp;
  resp.session = req.session;
  std::shared_ptr<Session> session = FindSession(req.session);
  if (session == nullptr) {
    resp.status = Status::NotFound("no session '" + req.session + "'");
    return resp;
  }
  std::lock_guard<std::mutex> session_lock(session->mu);
  if (session->defunct) {
    resp.status = Status::NotFound("no session '" + req.session + "'");
    return resp;
  }
  if (session->log == nullptr) {
    resp.status = Status::InvalidArgument(
        "session '" + req.session + "' is ephemeral (no --data-dir)");
    return resp;
  }
  Status st = session->log->WriteSnapshot();
  if (!st.ok()) {
    metrics_.counter("serve.snapshot_failures")->Add();
    resp.status = std::move(st);
    return resp;
  }
  metrics_.counter("serve.snapshots")->Add();
  resp.output = StringPrintf(
      "snapshot of %s at record %llu (%zu command(s) after compaction)",
      req.session.c_str(),
      static_cast<unsigned long long>(session->log->watermark()),
      session->log->last_snapshot_commands());
  return resp;
}

// ------------------------------------------------------- TCP transport

Status Server::Start() {
  if (started_) return Status::AlreadyExists("server already started");
  // Recover before listening: by the time a client can connect, every
  // durable session answers exactly as it did before the crash.
  IFLEX_RETURN_NOT_OK(RecoverAll());
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::Internal(StringPrintf("socket: %s", std::strerror(errno)));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(options_.port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    Status st =
        Status::Internal(StringPrintf("bind: %s", std::strerror(errno)));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  if (::listen(listen_fd_, 64) < 0) {
    Status st =
        Status::Internal(StringPrintf("listen: %s", std::strerror(errno)));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  started_ = true;
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  obs::DefaultEventLog().Info(
      "serve.listen", StringPrintf("iflexd listening on 127.0.0.1:%u", port_));
  return Status::OK();
}

void Server::AcceptLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (stopping_.load(std::memory_order_acquire)) break;
      if (errno == EINTR || errno == ECONNABORTED) continue;
      if (errno == EMFILE || errno == ENFILE || errno == ENOBUFS ||
          errno == ENOMEM) {
        // Transient resource exhaustion (fd table full under load):
        // back off briefly and keep accepting instead of silently
        // abandoning the listener while the server appears alive.
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        continue;
      }
      break;  // listener closed or truly dead
    }
    std::lock_guard<std::mutex> lock(conns_mu_);
    if (stopping_.load(std::memory_order_acquire)) {
      ::close(fd);
      break;
    }
    conn_fds_.push_back(fd);
    conn_threads_.emplace_back([this, fd] { ServeConnection(fd); });
  }
}

void Server::ServeConnection(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  auto send_all = [fd](const std::string& data) {
    size_t off = 0;
    while (off < data.size()) {
      ssize_t n = ::send(fd, data.data() + off, data.size() - off,
                         MSG_NOSIGNAL);
      if (n <= 0) return false;  // client went away mid-response
      off += static_cast<size_t>(n);
    }
    return true;
  };
  std::string buffer;
  char chunk[4096];
  bool open = true;
  while (open) {
    ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) {
      // EOF or error. A non-empty buffer is a truncated frame: the
      // client vanished mid-request; there is nobody to answer, so the
      // frame is dropped (and counted).
      if (!buffer.empty()) {
        metrics_.counter("serve.truncated_frames")->Add();
      }
      break;
    }
    buffer.append(chunk, static_cast<size_t>(n));
    size_t start = 0;
    for (size_t nl = buffer.find('\n', start); nl != std::string::npos;
         nl = buffer.find('\n', start)) {
      std::string line = buffer.substr(start, nl - start);
      start = nl + 1;
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.size() > options_.max_frame_bytes) {
        // A complete line over the bound is just as oversized as an
        // unterminated one: typed error, then hang up.
        metrics_.counter("serve.oversized_frames")->Add();
        Response resp;
        resp.status = Status::InvalidArgument(StringPrintf(
            "frame exceeds %zu bytes", options_.max_frame_bytes));
        send_all(resp.ToJson() + "\n");
        open = false;
        break;
      }
      std::string response = HandleLine(line);
      response.push_back('\n');
      if (!send_all(response)) {
        // Mid-request disconnect: the work already ran; drop the
        // response and close our side. The session itself survives.
        metrics_.counter("serve.aborted_responses")->Add();
        open = false;
        break;
      }
    }
    buffer.erase(0, start);
    if (open && buffer.size() > options_.max_frame_bytes) {
      // Oversized frame: answer with a typed error, then hang up — the
      // stream is no longer in sync with the frame grammar.
      metrics_.counter("serve.oversized_frames")->Add();
      Response resp;
      resp.status = Status::InvalidArgument(StringPrintf(
          "frame exceeds %zu bytes", options_.max_frame_bytes));
      send_all(resp.ToJson() + "\n");
      open = false;
    }
  }
  {
    // Deregister before closing so Stop() never shuts down a recycled
    // fd number that no longer belongs to this connection.
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (size_t i = 0; i < conn_fds_.size(); ++i) {
      if (conn_fds_[i] == fd) {
        conn_fds_.erase(conn_fds_.begin() + static_cast<ptrdiff_t>(i));
        break;
      }
    }
  }
  ::shutdown(fd, SHUT_RDWR);
  ::close(fd);
}

void Server::Stop() {
  if (!started_) return;
  bool expected = false;
  if (!stopping_.compare_exchange_strong(expected, true)) {
    // Second caller: threads are already being joined by the first.
    return;
  }
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  // conn_threads_ only grows under conns_mu_, and the accept loop is
  // done, so the vector is stable now.
  for (std::thread& t : conn_threads_) {
    if (t.joinable()) t.join();
  }
  conn_threads_.clear();
  conn_fds_.clear();
  started_ = false;
  stopping_.store(false, std::memory_order_release);
}

}  // namespace serve
}  // namespace iflex
